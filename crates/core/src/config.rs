//! Configuration and prebuilt estimators.

use estimator::{ContentionGuard, SoloPredictor};
use gpusim::ClusterSpec;
use modelspec::{ModelSpec, Parallelism};

/// How SM partitions are reconfigured (§3.2.1's comparison of spatial
/// sharing mechanisms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionBackend {
    /// CUDA Green Contexts: intra-process, reconfiguration costs only a
    /// stream synchronization (microseconds). MuxWise's choice.
    #[default]
    GreenContext,
    /// CUDA MPS: inter-process; changing SM allocations requires
    /// restarting the server processes (hundreds of milliseconds of
    /// stall), so adaptation is expensive.
    Mps,
    /// CUDA MIG-style static slicing: the initial partition never
    /// changes.
    Static,
}

impl PartitionBackend {
    /// Host-side stall charged per reconfiguration.
    pub fn reconfig_stall_secs(&self) -> f64 {
        match self {
            PartitionBackend::GreenContext => 0.0, // the μs cost lives in gpusim
            PartitionBackend::Mps => 0.25,
            PartitionBackend::Static => 0.0,
        }
    }

    /// Whether the partition may change after startup.
    pub fn can_reconfigure(&self) -> bool {
        !matches!(self, PartitionBackend::Static)
    }
}

/// Feature switches for MuxWise (all on by default; ablations in §4.4
/// turn them off individually).
#[derive(Debug, Clone, PartialEq)]
pub struct MuxWiseConfig {
    /// Layer-wise prefill execution (§3.2.3). Off = launch the whole
    /// remaining prefill phase as one kernel (Fig. 19 ablation).
    pub layer_wise: bool,
    /// Query-based synchronization (§3.2.3). Off = decode blocks until an
    /// active prefill batch completes before relaunching (Fig. 19).
    pub query_sync: bool,
    /// TTFT-aware preemption of long prefills by short ones (§3.4.2,
    /// Fig. 20). Optional in the paper.
    pub preemption: bool,
    /// Use the contention guard for worst-case partitioning. Off = trust
    /// solo-run predictions alone (risking SLO violations).
    pub contention_guard: bool,
    /// Maximum decode batch size (matches frameworks' captured graphs).
    pub max_decode_batch: usize,
    /// Maximum new (uncached) tokens batched into one prefill phase.
    pub max_prefill_batch_tokens: u64,
    /// Safety margin on the TBT budget when choosing partitions.
    pub tbt_margin: f64,
    /// Macro-stepped decode: during provably quiescent stretches (no
    /// prefill anywhere, nothing waiting or joining), successive decode
    /// launches skip the merge/partition/prefill prelude behind cheap
    /// cached invariant checks, deflating to the full path at the first
    /// deviation. Schedules are bit-identical either way; the flag
    /// exists so equivalence tests can A/B the two paths.
    pub macro_steps: bool,
    /// The spatial-sharing mechanism (§3.2.1): green contexts by
    /// default; MPS/static model the inter-process alternatives.
    pub backend: PartitionBackend,
}

impl Default for MuxWiseConfig {
    fn default() -> MuxWiseConfig {
        MuxWiseConfig {
            layer_wise: true,
            query_sync: true,
            preemption: false,
            contention_guard: true,
            max_decode_batch: 256,
            max_prefill_batch_tokens: 16_384,
            tbt_margin: 0.9,
            macro_steps: true,
            backend: PartitionBackend::GreenContext,
        }
    }
}

impl MuxWiseConfig {
    /// The full system including preemptive scheduling (Fig. 20).
    pub fn with_preemption() -> MuxWiseConfig {
        MuxWiseConfig {
            preemption: true,
            ..MuxWiseConfig::default()
        }
    }

    /// Ablation: disable layer-wise execution (whole-phase launches).
    pub fn without_layer_wise() -> MuxWiseConfig {
        MuxWiseConfig {
            layer_wise: false,
            ..MuxWiseConfig::default()
        }
    }

    /// Ablation: additionally disable query-based synchronization.
    pub fn without_query_sync() -> MuxWiseConfig {
        MuxWiseConfig {
            layer_wise: false,
            query_sync: false,
            ..MuxWiseConfig::default()
        }
    }

    /// Ablation: trust solo-run predictions without the contention guard.
    pub fn without_guard() -> MuxWiseConfig {
        MuxWiseConfig {
            contention_guard: false,
            ..MuxWiseConfig::default()
        }
    }

    /// §3.2.1 comparison: run on a different spatial-sharing backend.
    pub fn with_backend(backend: PartitionBackend) -> MuxWiseConfig {
        MuxWiseConfig {
            backend,
            ..MuxWiseConfig::default()
        }
    }
}

/// A profiled estimator pair, shareable across engine instances of a rate
/// sweep (one-time offline profiling per LLM–machine pair, §3.3.2).
#[derive(Debug, Clone)]
pub struct Estimators {
    /// Solo-run latency predictor (Eq. 1/2).
    pub predictor: SoloPredictor,
    /// Worst-case contention guard.
    pub guard: ContentionGuard,
}

impl Estimators {
    /// Runs the offline profiling for `model` on `cluster` at
    /// tensor-parallel degree `tp`: solo-run fits over every partition
    /// configuration (and their prefill complements), plus the pairwise
    /// contention grid.
    pub fn profile(model: &ModelSpec, cluster: &ClusterSpec, tp: u32) -> Estimators {
        let par = Parallelism::tp(tp, cluster.nvlink_gbs);
        let decode_configs = cluster.gpu.partition_configs();
        let mut partitions: Vec<u32> = decode_configs.clone();
        partitions.extend(decode_configs.iter().map(|&sms| cluster.gpu.sm_count - sms));
        partitions.push(cluster.gpu.sm_count);
        partitions.sort_unstable();
        partitions.dedup();
        let predictor = SoloPredictor::profile(model, cluster, &par, &partitions);
        let guard = ContentionGuard::profile(model, cluster, &par, &decode_configs);
        Estimators { predictor, guard }
    }

    /// Loads a cached profiling artifact from `path`, or profiles and
    /// writes it when absent/unreadable — mirroring how deployments
    /// amortize the paper's one-time per-LLM–machine profiling.
    pub fn load_or_profile(
        path: impl AsRef<std::path::Path>,
        model: &ModelSpec,
        cluster: &ClusterSpec,
        tp: u32,
    ) -> Estimators {
        if let Ok((predictor, guard)) = estimator::load_estimators(&path) {
            return Estimators { predictor, guard };
        }
        let est = Estimators::profile(model, cluster, tp);
        let _ = estimator::save_estimators(&path, &est.predictor, &est.guard);
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enables_engine_features() {
        let c = MuxWiseConfig::default();
        assert!(c.layer_wise && c.query_sync && c.contention_guard);
        assert!(!c.preemption);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!MuxWiseConfig::without_layer_wise().layer_wise);
        let nq = MuxWiseConfig::without_query_sync();
        assert!(!nq.layer_wise && !nq.query_sync);
        assert!(MuxWiseConfig::with_preemption().preemption);
    }

    #[test]
    fn profile_covers_all_partitions() {
        let est = Estimators::profile(&ModelSpec::llama8b(), &ClusterSpec::dgx_a100(), 8);
        let parts = est.predictor.partitions();
        assert!(parts.contains(&16));
        assert!(parts.contains(&92)); // complement of 16 on 108 SMs
        assert!(parts.contains(&108));
        assert!(est.guard.max_slowdown() >= 1.0);
    }
}
#[cfg(test)]
mod backend_tests {
    use super::*;

    #[test]
    fn backend_costs_match_design() {
        assert_eq!(PartitionBackend::GreenContext.reconfig_stall_secs(), 0.0);
        assert!(PartitionBackend::Mps.reconfig_stall_secs() > 0.1);
        assert!(PartitionBackend::GreenContext.can_reconfigure());
        assert!(PartitionBackend::Mps.can_reconfigure());
        assert!(!PartitionBackend::Static.can_reconfigure());
        assert_eq!(PartitionBackend::default(), PartitionBackend::GreenContext);
    }

    #[test]
    fn with_backend_builder() {
        let cfg = MuxWiseConfig::with_backend(PartitionBackend::Static);
        assert_eq!(cfg.backend, PartitionBackend::Static);
        assert!(cfg.layer_wise, "other defaults retained");
        assert!(!MuxWiseConfig::without_guard().contention_guard);
    }
}
