#![warn(missing_docs)]
//! **MuxWise**: high-goodput LLM serving via intra-GPU prefill-decode
//! multiplexing — the reproduction of the paper's core contribution.
//!
//! MuxWise executes the prefill and decode phases of LLM inference
//! **spatially multiplexed** on the same GPUs: decode runs on a
//! just-enough green-context SM partition that guarantees its TBT SLO
//! even under worst-case contention, prefill gets every remaining SM, and
//! both phases share one KV-cache pool. Three cooperating mechanisms
//! (§3 of the paper):
//!
//! 1. **Bubble-less multiplex engine** — prefill is split into
//!    *transformer layers* and launched in groups sized to cover exactly
//!    the concurrent decode iterations
//!    (`N_PL = ceil(T_d · N_T / T_P)`); completed prefills merge into the
//!    decode batch through *query-based synchronization* (no blocking);
//!    when decode drains mid-prefill, queued layers are re-launched on a
//!    re-partitioned context so no SMs idle.
//! 2. **Contention-tolerant estimator** — partition choices use
//!    worst-case decode latency: the solo-run predictor
//!    ([`estimator::SoloPredictor`], Eq. 1/2) times the contention
//!    guard's max observed slowdown
//!    ([`estimator::ContentionGuard`]), refined online after every
//!    co-run iteration.
//! 3. **SLO-aware dispatcher** — on every decode-iteration and
//!    prefill-chunk boundary, reserves the smallest SM partition meeting
//!    the TBT target, gives prefill the rest, and optionally lets short
//!    prefills preempt ultra-long ones at layer granularity when the
//!    preempted batch can still meet its own TTFT (non-recursive).
//!
//! # Examples
//!
//! ```no_run
//! use gpusim::{ClusterSpec, GpuSim};
//! use modelspec::ModelSpec;
//! use muxwise::{Estimators, MuxWise, MuxWiseConfig};
//! use serving::{Driver, SloSpec};
//! use simcore::SimRng;
//! use workload::{generate, WorkloadKind};
//!
//! let cluster = ClusterSpec::dgx_a100();
//! let model = ModelSpec::llama70b();
//! let est = Estimators::profile(&model, &cluster, 8);
//! let mut engine = MuxWise::new(&model, &cluster, 8, SloSpec::llama70b(), est,
//!                               MuxWiseConfig::default());
//! let mut rng = SimRng::seed_from(1);
//! let reqs = generate(WorkloadKind::ShareGpt, 200, 2.0, &mut rng);
//! let report = Driver::new(GpuSim::from_cluster(&cluster), reqs, SloSpec::llama70b())
//!     .run(&mut engine);
//! println!("finished {}/{}", report.finished, report.total);
//! ```

pub mod config;
pub mod engine;

pub use config::{Estimators, MuxWiseConfig, PartitionBackend};
pub use engine::MuxWise;
