//! Chunked-prefill (SGLang + SARATHI-Serve) and its NanoFlow variant.

use std::collections::{HashSet, VecDeque};

use gpusim::{ClusterSpec, CtxId, GpuSim, GroupId, KernelKind, WorkItem};
use kvcache::KvPool;
use modelspec::{ModelSpec, Parallelism, SeqState};
use serving::lease::{KvLease, LeaseTable};
use serving::lifecycle::{EngineCounters, Lifecycle};
use serving::{
    kv_pool_capacity_tokens, CrashVictim, DecodeBatch, DecodeSlot, RecoveryClass, ReqId, Scheduler,
    ServeCtx, SloSpec,
};
use simcore::SimDuration;

/// A request whose prompt is being processed chunk by chunk.
#[derive(Debug)]
struct PrefillProgress {
    id: ReqId,
    lease: KvLease,
    /// Cached prefix (reused) length at admission.
    cached: u64,
    /// Uncached prompt tokens to process in total.
    total_new: u64,
    /// Prompt tokens processed so far.
    done_new: u64,
}

/// SGLang-style chunked prefill: every iteration fuses the decode batch
/// with a prefill chunk capped by the token budget; shared radix KV pool.
/// The same scheduler doubles as **NanoFlow** with
/// [`ChunkedPrefill::nanoflow`]: nano-batch overlap trades ~12 % faster
/// compute for a duplicated weight load every iteration.
#[derive(Debug)]
pub struct ChunkedPrefill {
    model: ModelSpec,
    par: Parallelism,
    budget: u64,
    nano: bool,
    pool_capacity: u64,
    group: Option<GroupId>,
    ctx_id: Option<CtxId>,
    table: Option<LeaseTable>,
    lifecycle: Lifecycle,
    waiting: VecDeque<ReqId>,
    prefilling: VecDeque<PrefillProgress>,
    decode: DecodeBatch,
    /// Pieces of the in-flight iteration: `(request id, tokens)`.
    inflight: Option<Vec<(ReqId, u64)>>,
    /// The single all-GPU group lost a device; launches halt until the
    /// driver signals recovery.
    down: bool,
    /// Crash victims whose prefix was eviction-protected at revocation.
    crash_protected: HashSet<ReqId>,
    /// Reused per-iteration scratch (hot-loop allocation freedom).
    ctx_scratch: Vec<u64>,
    victim_scratch: Vec<ReqId>,
    retired_scratch: Vec<DecodeSlot>,
    /// Spare pieces buffer cycled through `inflight` so assembling an
    /// iteration never reallocates.
    pieces_spare: Vec<(ReqId, u64)>,
    /// Macro-stepped decode (mirrors `MuxWiseConfig::macro_steps`):
    /// during quiescent decode-only stretches the chunk-assembly prelude
    /// is skipped behind cheap invariant checks. Schedules are
    /// bit-identical either way; the flag exists so equivalence tests
    /// can A/B the two paths.
    macro_steps: bool,
    /// The previous launch proved the engine quiescent (decode-only,
    /// nothing waiting or prefilling), so this launch may coalesce.
    macro_armed: bool,
    decode_iters: u64,
    coalesced_iters: u64,
}

/// The candidate token budgets tried by offline tuning (descending).
const BUDGETS: [u64; 7] = [4096, 2048, 1024, 512, 256, 128, 64];
/// Reference decode batch used for tuning, as in Fig. 6.
const TUNE_BS: usize = 32;
/// Reference reused context (tokens) for tuning.
const TUNE_CTX: u64 = 1024;

impl ChunkedPrefill {
    /// Creates the scheduler with an explicit token budget.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit on the cluster.
    pub fn with_budget(
        model: &ModelSpec,
        cluster: &ClusterSpec,
        tp: u32,
        slo: SloSpec,
        budget: u64,
    ) -> ChunkedPrefill {
        let pool_capacity = kv_pool_capacity_tokens(cluster, model, cluster.num_gpus, tp, 0.0);
        assert!(pool_capacity > 0, "model does not fit on this cluster");
        let _ = slo; // the budget already encodes the SLO target
        ChunkedPrefill {
            model: model.clone(),
            par: Parallelism::tp(tp, cluster.nvlink_gbs),
            budget,
            nano: false,
            pool_capacity,
            group: None,
            ctx_id: None,
            table: None,
            lifecycle: Lifecycle::new(),
            waiting: VecDeque::new(),
            prefilling: VecDeque::new(),
            decode: DecodeBatch::new(),
            inflight: None,
            down: false,
            crash_protected: HashSet::new(),
            ctx_scratch: Vec::new(),
            victim_scratch: Vec::new(),
            retired_scratch: Vec::new(),
            pieces_spare: Vec::new(),
            macro_steps: true,
            macro_armed: false,
            decode_iters: 0,
            coalesced_iters: 0,
        }
    }

    /// Toggles macro-stepped decode (for A/B equivalence tests).
    pub fn set_macro_steps(&mut self, on: bool) {
        self.macro_steps = on;
        self.macro_armed = false;
    }

    /// Creates the scheduler with the SARATHI-Serve methodology: the
    /// largest budget whose fused-iteration latency (reference decode
    /// batch of 32, 1 K reused context) meets the TBT target, determined
    /// offline (§4.1).
    pub fn tuned(
        model: &ModelSpec,
        cluster: &ClusterSpec,
        tp: u32,
        slo: SloSpec,
    ) -> ChunkedPrefill {
        let budget = tune_token_budget(model, cluster, tp, &slo);
        ChunkedPrefill::with_budget(model, cluster, tp, slo, budget)
    }

    /// NanoFlow: same scheduling, nano-batch execution model.
    pub fn nanoflow(
        model: &ModelSpec,
        cluster: &ClusterSpec,
        tp: u32,
        slo: SloSpec,
    ) -> ChunkedPrefill {
        let mut c = ChunkedPrefill::tuned(model, cluster, tp, slo);
        c.nano = true;
        c
    }

    /// The active token budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// KV-pool hit statistics.
    pub fn pool_stats(&self) -> Option<kvcache::PoolStats> {
        self.table.as_ref().map(|t| t.stats())
    }

    /// Requests dropped because they could never fit the pool.
    pub fn dropped(&self) -> u64 {
        self.lifecycle.counters().drops
    }

    /// Read access to the shared pool (for invariant checks in tests).
    pub fn pool(&self) -> Option<&KvPool> {
        self.table.as_ref().map(|t| t.pool())
    }

    fn admit_waiting(&mut self, ctx: &mut ServeCtx) {
        if self.down {
            return;
        }
        while let Some(&id) = self.waiting.front() {
            if self.prefilling.len() >= 64 {
                break;
            }
            let spec = ctx.request(id).clone();
            let table = self.table.as_mut().expect("table");
            let blocks = spec.content.blocks(table.block_size());
            let lease = table.lease_prefix(&blocks, ctx.now());
            if self.crash_protected.remove(&id) {
                // Re-admitted crash victim: the lease's lock now pins the
                // prefix, so the advisory protection comes off.
                table.unprotect_prefix(&blocks);
            }
            let cached = lease.matched_tokens();
            self.waiting.pop_front();
            self.lifecycle.admit(id);
            self.prefilling.push_back(PrefillProgress {
                id,
                lease,
                cached,
                total_new: spec.input_tokens() - cached,
                done_new: 0,
            });
        }
    }

    // simlint: hot
    fn launch_iteration(&mut self, ctx: &mut ServeCtx) {
        if self.inflight.is_some() || self.down {
            return;
        }
        let (group, c) = match (self.group, self.ctx_id) {
            (Some(g), Some(c)) => (g, c),
            _ => return,
        };
        if self.decode.is_empty() && self.prefilling.is_empty() {
            return;
        }
        // Macro fast path: the previous launch proved the engine
        // quiescent (decode-only, nothing waiting or prefilling), so the
        // chunk-assembly prelude can be skipped and the cached context
        // scratch advanced in place. Any deviation (victims, arrivals,
        // retirements) disarms and demotes to the full path below.
        let mut fast = self.macro_armed;
        self.macro_armed = false;
        let now = ctx.now();
        // Grow decode KV by one token per sequence; requeue victims when
        // the pool is exhausted (their leases return through the table —
        // re-admission re-matches the radix tree fresh, so `cached` can
        // never go stale).
        let table = self.table.as_mut().expect("table");
        self.decode
            .grow_for_iteration_into(table, now, &mut self.victim_scratch);
        if !self.victim_scratch.is_empty() {
            // Requeues repopulate `waiting`: full prelude required.
            fast = false;
            for i in 0..self.victim_scratch.len() {
                let id = self.victim_scratch[i];
                self.waiting.push_front(id);
                self.lifecycle.requeue(id);
            }
        }

        // Assemble the fused batch: decode first, then a chunk within the
        // remaining budget. The pieces buffer cycles through `inflight`
        // and back via `pieces_spare`, so this allocates nothing steady
        // state.
        let bs = self.decode.len() as u64;
        let mut pieces: Vec<(ReqId, u64)> = std::mem::take(&mut self.pieces_spare);
        pieces.clear();
        let mut chunk_work = WorkItem::empty(KernelKind::Fused);
        if fast {
            // Unchanged slot set: every context advanced by exactly one
            // token since the scratch was built, and an armed launch
            // implies no prefill chunks, so the loop below would
            // contribute nothing.
            debug_assert!(
                self.prefilling.is_empty()
                    && self.waiting.is_empty()
                    && self.ctx_scratch.len() == self.decode.len(),
                "macro arm invariants violated"
            );
            for c in &mut self.ctx_scratch {
                *c += 1;
            }
            self.coalesced_iters += 1;
        } else {
            let mut chunk_left = self.budget.saturating_sub(bs);
            for p in self.prefilling.iter_mut() {
                if chunk_left == 0 {
                    break;
                }
                let need = p.total_new - p.done_new;
                if need == 0 {
                    // Fully-cached prompt (e.g. a requeued crash victim
                    // whose committed prefix covers every block): nothing
                    // to compute, but it must ride this iteration as a
                    // zero-token piece so the completion path retires it.
                    pieces.push((p.id, 0));
                    continue;
                }
                let take = chunk_left.min(need);
                let table = self.table.as_mut().expect("table");
                if !table.try_alloc_private(take, now) {
                    break;
                }
                p.lease.absorb_private(take);
                // The chunk re-reads the KV of everything before it —
                // cached prefix plus all earlier chunks (§2.3.2's
                // repetitive access).
                let seq = SeqState::new(take, p.cached + p.done_new);
                chunk_work = chunk_work.plus(&self.model.prefill_full_work(&[seq], &self.par));
                pieces.push((p.id, take));
                chunk_left -= take;
            }

            if bs == 0 && pieces.is_empty() {
                self.pieces_spare = pieces;
                // Pool exhausted with nothing running: drop the head
                // request (cannot ever fit) to stay live.
                if self.decode.is_empty() && self.inflight.is_none() {
                    if let Some(p) = self.prefilling.pop_front() {
                        self.table.as_mut().expect("table").release(p.lease);
                        ctx.finish_request(p.id);
                        self.lifecycle.drop_request(p.id);
                    }
                }
                return;
            }

            self.ctx_scratch.clear();
            self.ctx_scratch.extend(self.decode.contexts());
        }
        if bs > 0 {
            self.decode_iters += 1;
        }
        let chunk_tokens: u64 = pieces.iter().map(|&(_, t)| t).sum();
        let mut work = chunk_work;
        if !self.ctx_scratch.is_empty() {
            work = work.plus(&self.model.decode_iter_work(&self.ctx_scratch, &self.par));
        }
        work.kind = KernelKind::Fused;
        if self.nano {
            // Nano-batch overlap: the fused pass streams the weights
            // twice (one extra load per iteration), and splitting the
            // chunk in two only pays off when each half still saturates
            // the compute (NanoFlow's design point is a ≥1024 budget —
            // below it, the halves underutilize the tensor cores).
            if chunk_tokens >= 1024 {
                work.flops /= 1.12;
            } else {
                work.flops *= 1.18;
            }
            work.bytes += self.model.weight_bytes_per_gpu(self.par.tp);
        }
        let spec = ctx.gpu.spec();
        let mut launch = spec.graph_launch;
        if !pieces.is_empty() {
            // A chunk relaunches the whole model pass piecewise.
            launch += SimDuration::from_secs(
                spec.layer_graph_launch.as_secs() * self.model.num_layers as f64,
            );
        }
        let ready = now + launch;
        ctx.gpu.submit(group, c, work, ready, 1);
        // Re-arm for the next iteration only in the quiescent decode-only
        // regime: no chunk rode this launch and nothing is waiting to.
        self.macro_armed = self.macro_steps
            && bs > 0
            && pieces.is_empty()
            && self.prefilling.is_empty()
            && self.waiting.is_empty();
        self.inflight = Some(pieces);
    }

    fn retire_slot(&mut self, slot: DecodeSlot, ctx: &mut ServeCtx) {
        let spec = ctx.request(slot.id).clone();
        let table = self.table.as_mut().expect("table");
        let mut committed = spec.content.clone();
        committed.push(spec.session, ctx.tokens_emitted(slot.id));
        table.release_and_commit(slot.lease, &committed.blocks(table.block_size()), ctx.now());
        ctx.finish_request(slot.id);
        self.lifecycle.finish(slot.id);
    }

    // simlint: hot
    fn on_iteration_done(&mut self, ctx: &mut ServeCtx) {
        let pieces = self.inflight.take().unwrap_or_default();
        // Decode side: one token each.
        let mut retired = std::mem::take(&mut self.retired_scratch);
        self.decode.advance_iteration_into(ctx, &mut retired);
        if !retired.is_empty() {
            // The slot set changed: the cached context scratch no longer
            // describes the batch.
            self.macro_armed = false;
        }
        for slot in retired.drain(..) {
            self.retire_slot(slot, ctx);
        }
        self.retired_scratch = retired;
        // Prefill side: advance chunk progress; completed prompts join
        // the decode batch immediately (inflight batching).
        for &(id, tokens) in &pieces {
            if let Some(pos) = self.prefilling.iter().position(|p| p.id == id) {
                self.prefilling[pos].done_new += tokens;
                if self.prefilling[pos].done_new >= self.prefilling[pos].total_new {
                    let mut p = self.prefilling.remove(pos).expect("present");
                    // simlint: allow(R6) reason="once per completed prompt, not per decode iteration"
                    let spec = ctx.request(p.id).clone();
                    if ctx.tokens_emitted(p.id) == 0 {
                        ctx.emit_tokens(p.id, 1);
                    }
                    let emitted = ctx.tokens_emitted(p.id);
                    let remaining = spec.output_tokens.saturating_sub(emitted);
                    // Commit the prompt KV to the shared radix right away
                    // (SGLang's tree holds KV as soon as it is computed).
                    let table = self.table.as_mut().expect("table");
                    let blocks = spec.content.blocks(table.block_size());
                    table.migrate(&mut p.lease, &blocks, ctx.now());
                    let slot = DecodeSlot {
                        id: p.id,
                        context: spec.input_tokens() + emitted,
                        remaining_out: remaining,
                        lease: p.lease,
                    };
                    if remaining == 0 {
                        self.retire_slot(slot, ctx);
                    } else {
                        // Even when the batch is full, park the finished
                        // prefill as a zero-progress decode candidate for
                        // the next round.
                        self.lifecycle.begin_decode(slot.id);
                        self.decode.push(slot);
                    }
                }
            }
        }
        self.pieces_spare = pieces;
        self.admit_waiting(ctx);
        self.launch_iteration(ctx);
    }
}

impl Scheduler for ChunkedPrefill {
    fn on_start(&mut self, ctx: &mut ServeCtx) {
        let gpus: Vec<u32> = (0..ctx.gpu.num_gpus()).collect();
        let group = ctx.gpu.create_group(gpus);
        let sms = ctx.gpu.spec().sm_count;
        self.ctx_id = Some(ctx.gpu.set_context(group, sms));
        self.group = Some(group);
        self.table = Some(LeaseTable::new(self.pool_capacity, 64));
    }

    fn on_arrival(&mut self, id: ReqId, ctx: &mut ServeCtx) {
        self.macro_armed = false;
        self.waiting.push_back(id);
        self.admit_waiting(ctx);
        self.launch_iteration(ctx);
    }

    fn on_kernel_done(&mut self, _tag: u64, ctx: &mut ServeCtx) {
        self.on_iteration_done(ctx);
    }

    fn groups(&self) -> Vec<GroupId> {
        self.group.into_iter().collect()
    }

    fn streams(&self) -> Vec<(GroupId, CtxId)> {
        match (self.group, self.ctx_id) {
            (Some(g), Some(c)) => vec![(g, c)],
            _ => Vec::new(),
        }
    }

    fn counters(&self) -> EngineCounters {
        self.lifecycle.counters()
    }

    fn decode_iter_stats(&self) -> (u64, u64) {
        (self.decode_iters, self.coalesced_iters)
    }

    fn set_macro_steps(&mut self, on: bool) {
        ChunkedPrefill::set_macro_steps(self, on);
    }

    fn lease_tables(&self) -> Vec<&LeaseTable> {
        self.table.iter().collect()
    }

    fn lease_tables_mut(&mut self) -> Vec<&mut LeaseTable> {
        self.table.iter_mut().collect()
    }

    fn on_shed(&mut self, id: ReqId, _ctx: &mut ServeCtx) -> bool {
        if let Some(pos) = self.waiting.iter().position(|&w| w == id) {
            self.waiting.remove(pos);
            self.lifecycle.drop_request(id);
            return true;
        }
        false
    }

    fn on_gpu_lost(
        &mut self,
        _gpu: u32,
        _cancelled: &[u64],
        ctx: &mut ServeCtx,
    ) -> Vec<CrashVictim> {
        // One lockstep group spans every GPU: a single device death
        // halts the whole engine and loses all device-resident KV.
        self.down = true;
        self.inflight = None;
        self.macro_armed = false;
        let mut victims = Vec::new();
        // Chunked prefill has no layer checkpoints — chunk progress dies
        // with the device, so every victim re-prefills in full.
        for p in std::mem::take(&mut self.prefilling) {
            let spec = ctx.request(p.id).clone();
            let table = self.table.as_mut().expect("table");
            let blocks = spec.content.blocks(table.block_size());
            table.release(p.lease);
            table.protect_prefix(&blocks);
            self.crash_protected.insert(p.id);
            self.lifecycle.requeue(p.id);
            victims.push(CrashVictim {
                id: p.id,
                class: RecoveryClass::ReprefillFull,
                lost_tokens: p.done_new,
            });
        }
        for slot in self.decode.drain() {
            let spec = ctx.request(slot.id).clone();
            let table = self.table.as_mut().expect("table");
            let blocks = spec.content.blocks(table.block_size());
            table.release(slot.lease);
            table.protect_prefix(&blocks);
            self.crash_protected.insert(slot.id);
            self.lifecycle.requeue(slot.id);
            victims.push(CrashVictim {
                id: slot.id,
                class: RecoveryClass::ReprefillFull,
                lost_tokens: slot.context,
            });
        }
        victims
    }

    fn on_gpu_recovered(&mut self, _gpu: u32, ctx: &mut ServeCtx) {
        if let Some(group) = self.group {
            if ctx.gpu.group_has_dead_gpu(group) {
                return;
            }
        }
        self.down = false;
        self.macro_armed = false;
        self.admit_waiting(ctx);
        self.launch_iteration(ctx);
    }
}

/// The offline budget-tuning probe: largest budget whose fused iteration
/// (decode bs = 32, 1 K contexts, chunk filling the rest of the budget)
/// meets the TBT target on the full GPU.
pub fn tune_token_budget(model: &ModelSpec, cluster: &ClusterSpec, tp: u32, slo: &SloSpec) -> u64 {
    let sim = GpuSim::from_cluster(cluster);
    let par = Parallelism::tp(tp, cluster.nvlink_gbs);
    let sms = cluster.gpu.sm_count;
    for &budget in &BUDGETS {
        let t = fused_probe_latency(model, &sim, &par, sms, budget, cluster);
        if t <= slo.tbt.as_secs() * 0.9 {
            return budget;
        }
    }
    *BUDGETS.last().expect("non-empty")
}

/// Latency of one reference fused iteration at the given budget
/// (regenerates Fig. 6a when swept over budgets).
pub fn fused_probe_latency(
    model: &ModelSpec,
    sim: &GpuSim,
    par: &Parallelism,
    sms: u32,
    budget: u64,
    cluster: &ClusterSpec,
) -> f64 {
    let chunk = budget.saturating_sub(TUNE_BS as u64).max(1);
    let decode = model.decode_iter_work(&vec![TUNE_CTX; TUNE_BS], par);
    let prefill = model.prefill_full_work(&[SeqState::new(chunk, TUNE_CTX)], par);
    let mut work = decode.plus(&prefill);
    work.kind = KernelKind::Fused;
    let launch = cluster.gpu.graph_launch.as_secs()
        + cluster.gpu.layer_graph_launch.as_secs() * model.num_layers as f64;
    sim.solo_duration(sms, &work) + launch
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::Driver;
    use simcore::SimRng;
    use workload::{generate, WorkloadKind};

    #[test]
    fn tuned_budget_meets_tbt_at_reference_point() {
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama70b();
        let slo = SloSpec::llama70b();
        let budget = tune_token_budget(&model, &cluster, 8, &slo);
        // The paper's tuned budget for a 100 ms TBT target on Llama-70B
        // is 256 (§1: "8× larger than the SLO-compliant budget (256)").
        assert!(
            (128..=512).contains(&budget),
            "tuned budget {budget} far from the paper's 256"
        );
    }

    #[test]
    fn budget_sweet_spot_shape_matches_fig6a() {
        // Latency grows slowly until the GPU saturates (~4K), and the
        // 4K-budget latency lands near the paper's 505 ms.
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama70b();
        let sim = GpuSim::from_cluster(&cluster);
        let par = Parallelism::tp(8, cluster.nvlink_gbs);
        let t_4k = fused_probe_latency(&model, &sim, &par, 108, 4096, &cluster);
        let t_256 = fused_probe_latency(&model, &sim, &par, 108, 256, &cluster);
        assert!(
            (0.3..0.8).contains(&t_4k),
            "4K-budget fused latency {t_4k}s should be near 0.5s"
        );
        assert!(t_256 < 0.1, "256-budget latency {t_256}s must meet 100ms");
    }

    #[test]
    fn completes_sharegpt() {
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama8b();
        let slo = SloSpec::llama8b();
        let mut engine = ChunkedPrefill::tuned(&model, &cluster, 8, slo);
        let mut rng = SimRng::seed_from(3);
        let reqs = generate(WorkloadKind::ShareGpt, 100, 4.0, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        assert_eq!(rep.finished, rep.total);
        assert!(rep.tbt.len() > 1000);
    }

    #[test]
    fn long_reused_context_inflates_tbt() {
        // Fig. 6b's mechanism: with the budget fixed, a chunk dragging a
        // long reused context inflates the fused iteration beyond SLO.
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama70b();
        let par = Parallelism::tp(8, cluster.nvlink_gbs);
        let sim = GpuSim::from_cluster(&cluster);
        let iteration = |reused: u64| {
            let decode = model.decode_iter_work(&vec![1024; 32], &par);
            let chunk = model.prefill_full_work(&[SeqState::new(512, reused)], &par);
            let mut fused = decode.plus(&chunk);
            fused.kind = KernelKind::Fused;
            sim.solo_duration(108, &fused)
        };
        let short = iteration(1024);
        let long = iteration(65_536);
        assert!(
            long > short * 1.5,
            "reused context must inflate TBT: {short} → {long}"
        );
        assert!(long > 0.100, "64K reused context should violate 100ms SLO");
    }

    #[test]
    fn nanoflow_pays_weight_reload_when_memory_bound() {
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama70b();
        let slo = SloSpec::llama70b();
        let chunked = ChunkedPrefill::tuned(&model, &cluster, 8, slo);
        let nano = ChunkedPrefill::nanoflow(&model, &cluster, 8, slo);
        assert_eq!(chunked.budget(), nano.budget(), "same budget methodology");
        assert!(nano.nano);
    }

    #[test]
    fn multi_turn_reuse_via_shared_pool() {
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama8b();
        let slo = SloSpec::llama8b();
        let mut engine = ChunkedPrefill::tuned(&model, &cluster, 8, slo);
        let mut rng = SimRng::seed_from(5);
        let reqs = generate(WorkloadKind::Conversation, 50, 1.0, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        assert_eq!(rep.finished, rep.total);
        let stats = engine.pool_stats().expect("pool");
        assert!(stats.hit_rate() > 0.2, "hit rate {}", stats.hit_rate());
    }
}
