//! LoongServe: dynamic disaggregation with elastic sequence parallelism.
//!
//! Prefill jobs elastically grab GPU groups — the prefill half of the
//! server, plus the decode half whenever decode is idle — and run with
//! sequence parallelism across them. After prefill, the KV cache
//! migrates to the decode group. **No KV is kept after a request
//! finishes**: scaling releases the cache immediately (§2.3.1), so every
//! multi-turn follow-up recomputes its entire context — the recompute
//! penalty that dominates LoongServe's TTFT on Conversation/Tool&Agent.

use std::collections::{HashMap, VecDeque};

use gpusim::{ClusterSpec, CtxId, GroupId, LinkId};
use modelspec::{ModelSpec, Parallelism, SeqState};
use serving::lease::LeaseTable;
use serving::lifecycle::{EngineCounters, Lifecycle};
use serving::{
    kv_pool_capacity_tokens, CrashVictim, DecodeBatch, DecodeSlot, RecoveryClass, ReqId, Scheduler,
    ServeCtx, SloSpec,
};
use simcore::SimDuration;

/// A prefill job running on an elastic group.
#[derive(Debug)]
struct Job {
    id: ReqId,
    gpus: Vec<u32>,
    group: GroupId,
    ctx_id: CtxId,
}

/// A migrated context awaiting decode admission.
#[derive(Debug, Clone, Copy)]
struct Admit {
    id: ReqId,
    context: u64,
}

/// The LoongServe scheduler. See the [module docs](self).
#[derive(Debug)]
pub struct LoongServe {
    model: ModelSpec,
    /// Tensor-parallel degree inside each group (paper: 4 for Llama-70B,
    /// 2 for Llama-8B).
    tp: u32,
    nvlink_gbs: f64,
    d_pool_capacity: u64,
    num_gpus: u32,
    d_group: Option<GroupId>,
    d_ctx: Option<CtxId>,
    link: Option<LinkId>,
    d_table: Option<LeaseTable>,
    lifecycle: Lifecycle,
    free_gpus: Vec<u32>,
    waiting: VecDeque<ReqId>,
    jobs: HashMap<u64, Job>,
    transferring: HashMap<u64, Admit>,
    pending_admit: VecDeque<Admit>,
    decode: DecodeBatch,
    decode_inflight: bool,
    next_tag: u64,
    /// Total tokens recomputed because no cross-request reuse exists.
    recomputed_tokens: u64,
    /// The fixed decode group lost a device; decode admission and
    /// launches halt until it recovers.
    d_down: bool,
}

impl LoongServe {
    /// Creates the scheduler with the paper's model-parallel
    /// configuration: `tp` per group (4 for 70B-class, 2 for 8B-class);
    /// the decode group owns `tp` GPUs, the rest serve elastic prefill.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has fewer than `2 × tp` GPUs or the model
    /// does not fit the decode group.
    pub fn new(model: &ModelSpec, cluster: &ClusterSpec, tp: u32, _slo: SloSpec) -> LoongServe {
        assert!(cluster.num_gpus >= 2 * tp, "need at least two TP groups");
        let d_pool_capacity = kv_pool_capacity_tokens(cluster, model, tp, tp, 0.0);
        assert!(d_pool_capacity > 0, "model does not fit the decode group");
        LoongServe {
            model: model.clone(),
            tp,
            nvlink_gbs: cluster.nvlink_gbs,
            d_pool_capacity,
            num_gpus: cluster.num_gpus,
            d_group: None,
            d_ctx: None,
            link: None,
            d_table: None,
            lifecycle: Lifecycle::new(),
            free_gpus: Vec::new(),
            waiting: VecDeque::new(),
            jobs: HashMap::new(),
            transferring: HashMap::new(),
            pending_admit: VecDeque::new(),
            decode: DecodeBatch::new(),
            decode_inflight: false,
            next_tag: 1,
            recomputed_tokens: 0,
            d_down: false,
        }
    }

    /// Tokens that had to be recomputed because the KV cache was released
    /// (the cross-request reuse LoongServe gives up).
    pub fn recomputed_tokens(&self) -> u64 {
        self.recomputed_tokens
    }

    /// Requests dropped because they could never fit the pool.
    pub fn dropped(&self) -> u64 {
        self.lifecycle.counters().drops
    }

    fn try_start_prefills(&mut self, ctx: &mut ServeCtx) {
        while let Some(&id) = self.waiting.front() {
            // Elastic sizing: long inputs take more GPU groups; the
            // decode half can be borrowed while decode is idle.
            let spec = ctx.request(id).clone();
            let input = spec.input_tokens();
            let wanted_groups = (1 + input / 32_768).min(4) as usize;
            // Elasticity lives on the prefill side: jobs size their
            // groups from the free pool. The decode group keeps serving
            // throughout (real LoongServe migrates decode to fewer GPUs
            // rather than pausing it).
            let available = self.free_gpus.clone();
            let take_gpus = (wanted_groups * self.tp as usize).min(available.len());
            let take_gpus = take_gpus - take_gpus % self.tp as usize;
            if take_gpus == 0 {
                break;
            }
            let gpus: Vec<u32> = available[..take_gpus].to_vec();
            // Remove from the free pool (borrowed decode GPUs are tracked
            // by the job itself; decode cannot run while borrowed since
            // its ids overlap — enforced by `decode_can_run`).
            self.free_gpus.retain(|g| !gpus.contains(g));
            self.waiting.pop_front();
            self.lifecycle.admit(id);

            let sp = (gpus.len() as u32) / self.tp;
            let par = Parallelism::tp_sp(self.tp, sp, self.nvlink_gbs);
            // No cross-request reuse: the full input is recomputed.
            self.recomputed_tokens += spec.prior_context;
            let seq = SeqState::new(input, 0);
            let work = self.model.prefill_full_work(&[seq], &par);
            let group = ctx.gpu.create_group(gpus.clone());
            let sms = ctx.gpu.spec().sm_count;
            let c = ctx.gpu.set_context(group, sms);
            let launch = SimDuration::from_secs(
                ctx.gpu.spec().layer_graph_launch.as_secs() * self.model.num_layers as f64,
            );
            let ready = ctx.now() + launch;
            let tag = self.next_tag;
            self.next_tag += 1;
            ctx.gpu.submit(group, c, work, ready, tag);
            self.jobs.insert(
                tag,
                Job {
                    id,
                    gpus,
                    group,
                    ctx_id: c,
                },
            );
        }
    }

    fn decode_can_run(&self) -> bool {
        true // the decode group's GPUs are never lent out
    }

    fn on_prefill_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        let job = self.jobs.remove(&tag).expect("known job");
        ctx.gpu.remove_context(job.group, job.ctx_id);
        ctx.gpu.destroy_group(job.group);
        for g in job.gpus {
            if g >= self.tp {
                self.free_gpus.push(g);
            }
        }
        self.free_gpus.sort_unstable();
        if ctx.tokens_emitted(job.id) == 0 {
            ctx.emit_tokens(job.id, 1);
        }
        // Migrate to the decode group; the source copy is released
        // immediately (LoongServe keeps no spare KV).
        let spec = ctx.request(job.id).clone();
        let context = spec.input_tokens() + 1;
        let bytes = context as f64 * self.model.kv_bytes_per_token() / self.tp as f64;
        let t = self.next_tag;
        self.next_tag += 1;
        ctx.gpu.submit_transfer(self.link.expect("link"), bytes, t);
        self.transferring.insert(
            t,
            Admit {
                id: job.id,
                context,
            },
        );
        self.try_start_prefills(ctx);
    }

    fn try_admit_decode(&mut self, ctx: &mut ServeCtx) {
        if self.d_down {
            // Migrated contexts buffer without leases while the decode
            // group is down; a permanent crash then leaks nothing.
            return;
        }
        while let Some(&admit) = self.pending_admit.front() {
            let table = self.d_table.as_mut().expect("table");
            let Some(lease) = table.try_lease_private(admit.context, ctx.now()) else {
                break;
            };
            self.pending_admit.pop_front();
            let spec = ctx.request(admit.id).clone();
            let emitted = ctx.tokens_emitted(admit.id);
            let remaining = spec.output_tokens.saturating_sub(emitted);
            if remaining == 0 {
                self.d_table.as_mut().expect("table").release(lease);
                ctx.finish_request(admit.id);
                self.lifecycle.finish(admit.id);
                continue;
            }
            self.lifecycle.begin_decode(admit.id);
            self.decode.push(DecodeSlot {
                id: admit.id,
                context: admit.context,
                remaining_out: remaining,
                lease,
            });
        }
        self.launch_decode(ctx);
    }

    fn launch_decode(&mut self, ctx: &mut ServeCtx) {
        if self.decode_inflight || self.decode.is_empty() || self.d_down || !self.decode_can_run() {
            return;
        }
        let now = ctx.now();
        let table = self.d_table.as_mut().expect("table");
        for id in self.decode.grow_for_iteration(table, now) {
            self.waiting.push_front(id);
            self.lifecycle.requeue(id);
        }
        if self.decode.is_empty() {
            return;
        }
        let ctxs: Vec<u64> = self.decode.contexts().collect();
        let par = Parallelism::tp(self.tp, self.nvlink_gbs);
        let work = self.model.decode_iter_work(&ctxs, &par);
        let ready = now + ctx.gpu.spec().graph_launch;
        let (g, c) = (self.d_group.expect("started"), self.d_ctx.expect("started"));
        ctx.gpu.submit(g, c, work, ready, 0);
        self.decode_inflight = true;
    }

    fn on_decode_done(&mut self, ctx: &mut ServeCtx) {
        self.decode_inflight = false;
        for slot in self.decode.advance_iteration(ctx) {
            // Everything is released — nothing is cached for the
            // session's next turn.
            self.d_table.as_mut().expect("table").release(slot.lease);
            ctx.finish_request(slot.id);
            self.lifecycle.finish(slot.id);
        }
        self.try_admit_decode(ctx);
        self.launch_decode(ctx);
        self.try_start_prefills(ctx);
    }
}

impl Scheduler for LoongServe {
    fn on_start(&mut self, ctx: &mut ServeCtx) {
        let sms = ctx.gpu.spec().sm_count;
        let dg = ctx.gpu.create_group((0..self.tp).collect());
        self.d_ctx = Some(ctx.gpu.set_context(dg, sms));
        self.d_group = Some(dg);
        self.free_gpus = (self.tp..self.num_gpus).collect();
        self.link = Some(ctx.gpu.create_link(0.0, SimDuration::from_micros(5.0)));
        self.d_table = Some(LeaseTable::new(self.d_pool_capacity, 64));
    }

    fn on_arrival(&mut self, id: ReqId, ctx: &mut ServeCtx) {
        self.waiting.push_back(id);
        self.try_start_prefills(ctx);
    }

    fn on_kernel_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        if tag == 0 {
            self.on_decode_done(ctx);
        } else {
            self.on_prefill_done(tag, ctx);
        }
    }

    fn on_transfer_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        if let Some(admit) = self.transferring.remove(&tag) {
            self.pending_admit.push_back(admit);
            self.try_admit_decode(ctx);
        }
    }

    fn groups(&self) -> Vec<GroupId> {
        self.d_group.into_iter().collect()
    }

    fn streams(&self) -> Vec<(GroupId, CtxId)> {
        match (self.d_group, self.d_ctx) {
            (Some(g), Some(c)) => vec![(g, c)],
            _ => Vec::new(),
        }
    }

    fn counters(&self) -> EngineCounters {
        self.lifecycle.counters()
    }

    fn lease_tables(&self) -> Vec<&LeaseTable> {
        self.d_table.iter().collect()
    }

    fn lease_tables_mut(&mut self) -> Vec<&mut LeaseTable> {
        self.d_table.iter_mut().collect()
    }

    fn on_shed(&mut self, id: ReqId, _ctx: &mut ServeCtx) -> bool {
        if let Some(pos) = self.waiting.iter().position(|&w| w == id) {
            self.waiting.remove(pos);
            self.lifecycle.drop_request(id);
            return true;
        }
        false
    }

    fn on_gpu_lost(
        &mut self,
        gpu: u32,
        _cancelled: &[u64],
        ctx: &mut ServeCtx,
    ) -> Vec<CrashVictim> {
        let mut victims = Vec::new();
        if gpu < self.tp {
            // Decode group died: batched, pending and in-transit contexts
            // all lose their KV. LoongServe keeps no spare copy anywhere,
            // so every victim recomputes its full context.
            self.d_down = true;
            self.decode_inflight = false;
            for slot in self.decode.drain() {
                self.d_table.as_mut().expect("table").release(slot.lease);
                self.lifecycle.requeue(slot.id);
                victims.push(CrashVictim {
                    id: slot.id,
                    class: RecoveryClass::ReprefillFull,
                    lost_tokens: slot.context,
                });
            }
            // Drain in-transit contexts in tag order — victim order
            // decides the requeue event order.
            let inflight = serving::order::drain_sorted(&mut self.transferring);
            for admit in std::mem::take(&mut self.pending_admit)
                .into_iter()
                .chain(inflight.into_iter().map(|(_, a)| a))
            {
                // Neither holds a lease yet (admission leases on join).
                self.lifecycle.requeue(admit.id);
                victims.push(CrashVictim {
                    id: admit.id,
                    class: RecoveryClass::ReprefillFull,
                    lost_tokens: admit.context,
                });
            }
        } else {
            // An elastic prefill GPU died. At most one job spans it (a
            // GPU serves a single elastic group at a time); tear the job
            // down, return its surviving GPUs and hold the dead one out
            // of the free pool until recovery.
            self.free_gpus.retain(|&g| g != gpu);
            let mut hit: Vec<u64> = self
                .jobs
                .iter()
                .filter(|(_, j)| j.gpus.contains(&gpu))
                .map(|(&tag, _)| tag)
                .collect();
            hit.sort_unstable();
            for tag in hit {
                let job = self.jobs.remove(&tag).expect("known job");
                ctx.gpu.remove_context(job.group, job.ctx_id);
                ctx.gpu.destroy_group(job.group);
                for g in job.gpus {
                    if g >= self.tp && g != gpu {
                        self.free_gpus.push(g);
                    }
                }
                self.free_gpus.sort_unstable();
                let spec = ctx.request(job.id).clone();
                self.lifecycle.requeue(job.id);
                victims.push(CrashVictim {
                    id: job.id,
                    class: RecoveryClass::ReprefillFull,
                    lost_tokens: spec.input_tokens(),
                });
            }
        }
        victims
    }

    fn on_gpu_recovered(&mut self, gpu: u32, ctx: &mut ServeCtx) {
        if gpu < self.tp {
            if let Some(g) = self.d_group {
                if ctx.gpu.group_has_dead_gpu(g) {
                    return;
                }
            }
            self.d_down = false;
            self.try_admit_decode(ctx);
            self.launch_decode(ctx);
        } else {
            if !self.free_gpus.contains(&gpu) {
                self.free_gpus.push(gpu);
                self.free_gpus.sort_unstable();
            }
            self.try_start_prefills(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GpuSim;
    use serving::Driver;
    use simcore::SimRng;
    use workload::{generate, WorkloadKind};

    fn run(kind: WorkloadKind, n: usize, rate: f64) -> (serving::Report, LoongServe) {
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama8b();
        let slo = SloSpec::llama8b();
        let mut engine = LoongServe::new(&model, &cluster, 2, slo);
        let mut rng = SimRng::seed_from(31);
        let reqs = generate(kind, n, rate, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        (rep, engine)
    }

    #[test]
    fn completes_sharegpt() {
        let (rep, engine) = run(WorkloadKind::ShareGpt, 80, 4.0);
        assert_eq!(rep.finished, rep.total);
        // Single-turn: nothing to recompute.
        assert_eq!(engine.recomputed_tokens(), 0);
    }

    #[test]
    fn multi_turn_recomputes_context() {
        let (rep, engine) = run(WorkloadKind::Conversation, 40, 1.0);
        assert_eq!(rep.finished, rep.total);
        assert!(
            engine.recomputed_tokens() > 10_000,
            "multi-turn context must be recomputed: {}",
            engine.recomputed_tokens()
        );
    }

    #[test]
    fn elastic_groups_release_gpus() {
        let (rep, engine) = run(WorkloadKind::Loogle, 20, 1.0);
        assert_eq!(rep.finished, rep.total);
        // All prefill GPUs returned to the free pool at the end.
        assert_eq!(engine.free_gpus.len(), 6);
    }
}
