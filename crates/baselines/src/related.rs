//! Related-work multiplexing variants evaluated in §6 of the paper.
//!
//! * [`WindServe`] — prefill and decode co-run via plain CUDA streams:
//!   modeled as a **fixed half/half SM split** with no latency estimator,
//!   no worst-case guard, and whole-phase prefill launches. Contention is
//!   uncontrolled and the partition never adapts, so decode SLOs wobble
//!   and prefill starves under load (MuxWise reports a 1.61× goodput win
//!   against it).
//! * [`TemporalMux`] — a Tropical-style temporal-only variant enhanced
//!   with layer-wise prefill: between decode iterations, as many prefill
//!   layers as fit in the TBT slack run on the **full** GPU; the phases
//!   never overlap spatially, so decode's memory-bound iterations leave
//!   the compute idle (≥ 20 % worse than MuxWise in the paper's trials).

use std::collections::{HashMap, HashSet, VecDeque};

use estimator::SoloPredictor;
use gpusim::{ClusterSpec, CtxId, GroupId, KernelKind};
use modelspec::{ModelSpec, Parallelism, SeqState};
use serving::lease::{KvLease, LeaseTable};
use serving::lifecycle::{EngineCounters, Lifecycle};
use serving::{
    kv_pool_capacity_tokens, CrashVictim, DecodeBatch, DecodeSlot, RecoveryClass, ReqId, Scheduler,
    ServeCtx, SloSpec,
};
use simcore::SimDuration;

#[derive(Debug)]
struct PrefillReq {
    id: ReqId,
    seq: SeqState,
    lease: KvLease,
}

/// Shared plumbing of the two variants (single pool, simple decode
/// batch, whole-request prefill bookkeeping).
#[derive(Debug)]
struct Common {
    model: ModelSpec,
    par: Parallelism,
    pool_capacity: u64,
    table: Option<LeaseTable>,
    lifecycle: Lifecycle,
    waiting: VecDeque<ReqId>,
    decode: DecodeBatch,
    decode_inflight: bool,
    /// The all-GPU group lost a device; launches halt until recovery.
    down: bool,
    /// Crash victims whose prefix was eviction-protected at revocation.
    crash_protected: HashSet<ReqId>,
}

impl Common {
    fn new(model: &ModelSpec, cluster: &ClusterSpec, tp: u32) -> Common {
        let pool_capacity = kv_pool_capacity_tokens(cluster, model, cluster.num_gpus, tp, 0.0);
        assert!(pool_capacity > 0, "model does not fit on this cluster");
        Common {
            model: model.clone(),
            par: Parallelism::tp(tp, cluster.nvlink_gbs),
            pool_capacity,
            table: None,
            lifecycle: Lifecycle::new(),
            waiting: VecDeque::new(),
            decode: DecodeBatch::new(),
            decode_inflight: false,
            down: false,
            crash_protected: HashSet::new(),
        }
    }

    /// Sheds a still-queued request (watchdog deadline path); `false` if
    /// the request already left the waiting queue.
    fn shed(&mut self, id: ReqId) -> bool {
        if let Some(pos) = self.waiting.iter().position(|&w| w == id) {
            self.waiting.remove(pos);
            self.lifecycle.drop_request(id);
            return true;
        }
        false
    }

    fn admit_one(&mut self, ctx: &mut ServeCtx) -> Option<PrefillReq> {
        if self.down {
            return None;
        }
        let &id = self.waiting.front()?;
        let spec = ctx.request(id).clone();
        let table = self.table.as_mut().expect("table");
        let blocks = spec.content.blocks(table.block_size());
        let reused = table.peek_prefix(&blocks);
        let new_tokens = spec.input_tokens() - reused;
        if !table.try_alloc_private(new_tokens, ctx.now()) {
            if self.decode.is_empty() && !self.decode_inflight {
                self.waiting.pop_front();
                ctx.finish_request(id);
                self.lifecycle.drop_request(id);
            }
            return None;
        }
        let mut lease = table.lease_prefix(&blocks, ctx.now());
        if self.crash_protected.remove(&id) {
            // Re-admitted crash victim: the lease's lock now pins the
            // prefix, so the advisory protection comes off.
            table.unprotect_prefix(&blocks);
        }
        self.waiting.pop_front();
        self.lifecycle.admit(id);
        let seq = SeqState::new(
            spec.input_tokens() - lease.matched_tokens(),
            lease.matched_tokens(),
        );
        lease.absorb_private(seq.new_tokens);
        Some(PrefillReq { id, seq, lease })
    }

    fn finish_prefill(&mut self, mut r: PrefillReq, ctx: &mut ServeCtx) {
        let spec = ctx.request(r.id).clone();
        if ctx.tokens_emitted(r.id) == 0 {
            ctx.emit_tokens(r.id, 1);
        }
        let emitted = ctx.tokens_emitted(r.id);
        let remaining = spec.output_tokens.saturating_sub(emitted);
        let table = self.table.as_mut().expect("table");
        let blocks = spec.content.blocks(table.block_size());
        table.migrate(&mut r.lease, &blocks, ctx.now());
        let slot = DecodeSlot {
            id: r.id,
            context: spec.input_tokens() + emitted,
            remaining_out: remaining,
            lease: r.lease,
        };
        if remaining == 0 {
            self.retire(slot, ctx);
        } else {
            self.lifecycle.begin_decode(slot.id);
            self.decode.push(slot);
        }
    }

    fn retire(&mut self, slot: DecodeSlot, ctx: &mut ServeCtx) {
        let spec = ctx.request(slot.id).clone();
        let table = self.table.as_mut().expect("table");
        let mut committed = spec.content.clone();
        committed.push(spec.session, ctx.tokens_emitted(slot.id));
        table.release_and_commit(slot.lease, &committed.blocks(table.block_size()), ctx.now());
        ctx.finish_request(slot.id);
        self.lifecycle.finish(slot.id);
    }

    /// Allocates the per-iteration decode KV growth, requeueing victims
    /// when the pool runs dry. Returns `false` when the batch emptied.
    fn grow_decode_kv(&mut self, ctx: &mut ServeCtx) -> bool {
        let now = ctx.now();
        let table = self.table.as_mut().expect("table");
        for id in self.decode.grow_for_iteration(table, now) {
            self.waiting.push_front(id);
            self.lifecycle.requeue(id);
        }
        !self.decode.is_empty()
    }

    fn advance_decode(&mut self, ctx: &mut ServeCtx) {
        for slot in self.decode.advance_iteration(ctx) {
            self.retire(slot, ctx);
        }
    }

    /// Releases one victim's lease, eviction-protects its prefix for the
    /// retry, and requeues it in the lifecycle.
    fn revoke(&mut self, id: ReqId, lease: KvLease, ctx: &mut ServeCtx) {
        let spec = ctx.request(id).clone();
        let table = self.table.as_mut().expect("table");
        let blocks = spec.content.blocks(table.block_size());
        table.release(lease);
        table.protect_prefix(&blocks);
        self.crash_protected.insert(id);
        self.lifecycle.requeue(id);
    }

    /// Drains the decode batch after a fail-stop: every slot loses its
    /// device-resident KV and must re-prefill its accumulated context.
    fn revoke_decode(&mut self, ctx: &mut ServeCtx) -> Vec<CrashVictim> {
        let mut victims = Vec::new();
        for slot in self.decode.drain() {
            self.revoke(slot.id, slot.lease, ctx);
            victims.push(CrashVictim {
                id: slot.id,
                class: RecoveryClass::ReprefillFull,
                lost_tokens: slot.context,
            });
        }
        victims
    }
}

// --------------------------------------------------------------------------

/// WindServe-style stream multiplexing: fixed 50/50 SM split, no
/// estimator, whole-phase prefill launches. See the [module docs](self).
#[derive(Debug)]
pub struct WindServe {
    common: Common,
    group: Option<GroupId>,
    d_ctx: Option<CtxId>,
    p_ctx: Option<CtxId>,
    prefill: Option<PrefillReq>,
}

impl WindServe {
    /// Creates the scheduler.
    pub fn new(model: &ModelSpec, cluster: &ClusterSpec, tp: u32, _slo: SloSpec) -> WindServe {
        WindServe {
            common: Common::new(model, cluster, tp),
            group: None,
            d_ctx: None,
            p_ctx: None,
            prefill: None,
        }
    }

    fn try_start_prefill(&mut self, ctx: &mut ServeCtx) {
        if self.prefill.is_some() {
            return;
        }
        let Some(r) = self.common.admit_one(ctx) else {
            return;
        };
        let work = self
            .common
            .model
            .prefill_full_work(&[r.seq], &self.common.par);
        let spec = ctx.gpu.spec();
        let launch = SimDuration::from_secs(
            spec.layer_graph_launch.as_secs() * self.common.model.num_layers as f64,
        );
        let ready = ctx.now() + launch;
        ctx.gpu.submit(
            self.group.expect("started"),
            self.p_ctx.expect("started"),
            work,
            ready,
            1,
        );
        self.prefill = Some(r);
    }

    fn launch_decode(&mut self, ctx: &mut ServeCtx) {
        if self.common.decode_inflight || self.common.decode.is_empty() || self.common.down {
            return;
        }
        if !self.common.grow_decode_kv(ctx) {
            return;
        }
        let ctxs: Vec<u64> = self.common.decode.contexts().collect();
        let work = self.common.model.decode_iter_work(&ctxs, &self.common.par);
        let ready = ctx.now() + ctx.gpu.spec().graph_launch;
        ctx.gpu.submit(
            self.group.expect("started"),
            self.d_ctx.expect("started"),
            work,
            ready,
            0,
        );
        self.common.decode_inflight = true;
    }
}

impl Scheduler for WindServe {
    fn on_start(&mut self, ctx: &mut ServeCtx) {
        let gpus: Vec<u32> = (0..ctx.gpu.num_gpus()).collect();
        let group = ctx.gpu.create_group(gpus);
        let sms = ctx.gpu.spec().sm_count;
        self.d_ctx = Some(ctx.gpu.set_context(group, sms / 2));
        self.p_ctx = Some(ctx.gpu.set_context(group, sms - sms / 2));
        self.group = Some(group);
        self.common.table = Some(LeaseTable::new(self.common.pool_capacity, 64));
    }

    fn on_arrival(&mut self, id: ReqId, ctx: &mut ServeCtx) {
        self.common.waiting.push_back(id);
        self.try_start_prefill(ctx);
    }

    fn on_kernel_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        if tag == 0 {
            self.common.decode_inflight = false;
            self.common.advance_decode(ctx);
        } else if let Some(r) = self.prefill.take() {
            self.common.finish_prefill(r, ctx);
            self.try_start_prefill(ctx);
        }
        self.launch_decode(ctx);
        self.try_start_prefill(ctx);
    }

    fn groups(&self) -> Vec<GroupId> {
        self.group.into_iter().collect()
    }

    fn streams(&self) -> Vec<(GroupId, CtxId)> {
        match (self.group, self.d_ctx, self.p_ctx) {
            (Some(g), Some(d), Some(p)) => vec![(g, d), (g, p)],
            _ => Vec::new(),
        }
    }

    fn counters(&self) -> EngineCounters {
        self.common.lifecycle.counters()
    }

    fn lease_tables(&self) -> Vec<&LeaseTable> {
        self.common.table.iter().collect()
    }

    fn lease_tables_mut(&mut self) -> Vec<&mut LeaseTable> {
        self.common.table.iter_mut().collect()
    }

    fn on_shed(&mut self, id: ReqId, _ctx: &mut ServeCtx) -> bool {
        self.common.shed(id)
    }

    fn on_gpu_lost(
        &mut self,
        _gpu: u32,
        _cancelled: &[u64],
        ctx: &mut ServeCtx,
    ) -> Vec<CrashVictim> {
        // The 50/50 split runs both streams on one all-GPU group, so a
        // single device death takes the whole engine down.
        self.common.down = true;
        self.common.decode_inflight = false;
        let mut victims = Vec::new();
        if let Some(r) = self.prefill.take() {
            // Whole-phase prefill launches: no checkpoint to resume from.
            let lost = r.seq.new_tokens;
            self.common.revoke(r.id, r.lease, ctx);
            victims.push(CrashVictim {
                id: r.id,
                class: RecoveryClass::ReprefillFull,
                lost_tokens: lost,
            });
        }
        victims.extend(self.common.revoke_decode(ctx));
        victims
    }

    fn on_gpu_recovered(&mut self, _gpu: u32, ctx: &mut ServeCtx) {
        if let Some(group) = self.group {
            if ctx.gpu.group_has_dead_gpu(group) {
                return;
            }
        }
        self.common.down = false;
        self.try_start_prefill(ctx);
        self.launch_decode(ctx);
    }
}

// --------------------------------------------------------------------------

/// Temporal-only multiplexing: layer-wise prefill squeezed into the TBT
/// slack between decode iterations, never spatially concurrent. See the
/// [module docs](self).
#[derive(Debug)]
pub struct TemporalMux {
    common: Common,
    slo: SloSpec,
    predictor: SoloPredictor,
    group: Option<GroupId>,
    ctx_id: Option<CtxId>,
    prefill: Option<PrefillReq>,
    layers_done: u32,
    layers_inflight: u32,
    sm_count: u32,
    /// Layer checkpoints of crash victims: re-admission resumes here
    /// instead of replaying the already-completed prefill layers.
    resume_layers: HashMap<ReqId, u32>,
}

/// Tags distinguishing the phases.
const TAG_DECODE: u64 = 0;
const TAG_LAYER: u64 = 1;

impl TemporalMux {
    /// Creates the scheduler; `predictor` sizes the per-gap layer bursts.
    pub fn new(
        model: &ModelSpec,
        cluster: &ClusterSpec,
        tp: u32,
        slo: SloSpec,
        predictor: SoloPredictor,
    ) -> TemporalMux {
        TemporalMux {
            common: Common::new(model, cluster, tp),
            slo,
            predictor,
            group: None,
            ctx_id: None,
            prefill: None,
            layers_done: 0,
            layers_inflight: 0,
            sm_count: cluster.gpu.sm_count,
            resume_layers: HashMap::new(),
        }
    }

    fn schedule(&mut self, ctx: &mut ServeCtx) {
        // One shared stream: alternate a decode iteration with a burst of
        // prefill layers that fits the remaining TBT slack.
        if self.common.decode_inflight || self.layers_inflight > 0 || self.common.down {
            return;
        }
        if self.prefill.is_none() {
            if let Some(r) = self.common.admit_one(ctx) {
                self.layers_done = self.resume_layers.remove(&r.id).unwrap_or(0);
                self.prefill = Some(r);
            }
        }
        let (group, c) = (self.group.expect("started"), self.ctx_id.expect("started"));
        let ctxs: Vec<u64> = self.common.decode.contexts().collect();
        let have_decode = !ctxs.is_empty();
        let t_decode = if have_decode {
            self.predictor.decode_latency(self.sm_count, &ctxs)
        } else {
            0.0
        };
        if let Some(r) = &self.prefill {
            let total_layers = self.common.model.num_layers;
            let t_phase = self.predictor.prefill_latency(self.sm_count, &[r.seq]);
            let t_layer = (t_phase / total_layers as f64).max(1e-6);
            let slack = if have_decode {
                (self.slo.tbt.as_secs() * 0.9 - t_decode).max(0.0)
            } else {
                f64::INFINITY
            };
            let n = if slack.is_infinite() {
                total_layers - self.layers_done
            } else {
                ((slack / t_layer).floor() as u32).min(total_layers - self.layers_done)
            };
            if n > 0 {
                let layer = self
                    .common
                    .model
                    .prefill_layer_work(&[r.seq], &self.common.par);
                let mut burst = layer.scaled(n as f64);
                if self.layers_done + n == total_layers {
                    burst = burst.plus(&self.common.model.lm_head_work(1.0, &self.common.par));
                }
                burst.kind = KernelKind::Prefill;
                let launch =
                    SimDuration::from_secs(ctx.gpu.spec().layer_graph_launch.as_secs() * n as f64);
                let ready = ctx.now() + launch;
                ctx.gpu.submit(group, c, burst, ready, TAG_LAYER);
                self.layers_inflight = n;
            }
        }
        if have_decode {
            if !self.common.grow_decode_kv(ctx) {
                return;
            }
            let ctxs: Vec<u64> = self.common.decode.contexts().collect();
            let work = self.common.model.decode_iter_work(&ctxs, &self.common.par);
            let ready = ctx.now() + ctx.gpu.spec().graph_launch;
            ctx.gpu.submit(group, c, work, ready, TAG_DECODE);
            self.common.decode_inflight = true;
        }
    }
}

impl Scheduler for TemporalMux {
    fn on_start(&mut self, ctx: &mut ServeCtx) {
        let gpus: Vec<u32> = (0..ctx.gpu.num_gpus()).collect();
        let group = ctx.gpu.create_group(gpus);
        let sms = ctx.gpu.spec().sm_count;
        self.ctx_id = Some(ctx.gpu.set_context(group, sms));
        self.group = Some(group);
        self.common.table = Some(LeaseTable::new(self.common.pool_capacity, 64));
    }

    fn on_arrival(&mut self, id: ReqId, ctx: &mut ServeCtx) {
        self.common.waiting.push_back(id);
        self.schedule(ctx);
    }

    fn on_kernel_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        match tag {
            TAG_DECODE => {
                self.common.decode_inflight = false;
                self.common.advance_decode(ctx);
            }
            _ => {
                self.layers_done += self.layers_inflight;
                self.layers_inflight = 0;
                if self.layers_done >= self.common.model.num_layers {
                    if let Some(r) = self.prefill.take() {
                        self.common.finish_prefill(r, ctx);
                    }
                }
            }
        }
        self.schedule(ctx);
    }

    fn groups(&self) -> Vec<GroupId> {
        self.group.into_iter().collect()
    }

    fn streams(&self) -> Vec<(GroupId, CtxId)> {
        match (self.group, self.ctx_id) {
            (Some(g), Some(c)) => vec![(g, c)],
            _ => Vec::new(),
        }
    }

    fn counters(&self) -> EngineCounters {
        self.common.lifecycle.counters()
    }

    fn lease_tables(&self) -> Vec<&LeaseTable> {
        self.common.table.iter().collect()
    }

    fn lease_tables_mut(&mut self) -> Vec<&mut LeaseTable> {
        self.common.table.iter_mut().collect()
    }

    fn on_shed(&mut self, id: ReqId, _ctx: &mut ServeCtx) -> bool {
        self.common.shed(id)
    }

    fn on_gpu_lost(
        &mut self,
        _gpu: u32,
        _cancelled: &[u64],
        ctx: &mut ServeCtx,
    ) -> Vec<CrashVictim> {
        self.common.down = true;
        self.common.decode_inflight = false;
        self.layers_inflight = 0;
        let mut victims = Vec::new();
        if let Some(r) = self.prefill.take() {
            // Layer-wise launches double as checkpoints: the retry skips
            // the layers that had already completed before the crash.
            let checkpoint = self.layers_done;
            if checkpoint > 0 {
                self.resume_layers.insert(r.id, checkpoint);
            }
            self.layers_done = 0;
            self.common.revoke(r.id, r.lease, ctx);
            victims.push(CrashVictim {
                id: r.id,
                class: RecoveryClass::ResumeFromLayer(checkpoint),
                lost_tokens: 0,
            });
        }
        victims.extend(self.common.revoke_decode(ctx));
        victims
    }

    fn on_gpu_recovered(&mut self, _gpu: u32, ctx: &mut ServeCtx) {
        if let Some(group) = self.group {
            if ctx.gpu.group_has_dead_gpu(group) {
                return;
            }
        }
        self.common.down = false;
        self.schedule(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GpuSim;
    use serving::Driver;
    use simcore::SimRng;
    use workload::{generate, WorkloadKind};

    fn cluster_model() -> (ClusterSpec, ModelSpec, SloSpec) {
        (
            ClusterSpec::dgx_a100(),
            ModelSpec::llama8b(),
            SloSpec::llama8b(),
        )
    }

    #[test]
    fn windserve_completes_sharegpt() {
        let (cluster, model, slo) = cluster_model();
        let mut engine = WindServe::new(&model, &cluster, 8, slo);
        let mut rng = SimRng::seed_from(51);
        let reqs = generate(WorkloadKind::ShareGpt, 80, 3.0, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        assert_eq!(rep.finished, rep.total);
    }

    #[test]
    fn temporal_completes_sharegpt_and_respects_slack() {
        let (cluster, model, slo) = cluster_model();
        let par = Parallelism::tp(8, cluster.nvlink_gbs);
        let predictor = SoloPredictor::profile(&model, &cluster, &par, &[108]);
        let mut engine = TemporalMux::new(&model, &cluster, 8, slo, predictor);
        let mut rng = SimRng::seed_from(52);
        let reqs = generate(WorkloadKind::ShareGpt, 80, 3.0, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        assert_eq!(rep.finished, rep.total);
        assert!(
            rep.tbt.p99() < slo.tbt.as_secs() * 1.6,
            "p99 {}",
            rep.tbt.p99()
        );
    }
}
