//! Hybrid disaggregation (§5 "Large-scale deployment"): a static
//! prefill/decode split in which the **decode instance multiplexes
//! prefill onto its idle SMs**, MuxWise-style.
//!
//! The paper argues MuxWise is complementary to disaggregated
//! deployments: low-utilization decode instances can absorb prefill work
//! through spatial multiplexing. This scheduler implements that design
//! point: prefill requests go to the dedicated prefill instance first;
//! when it is backlogged, overflow prefills run on the decode instance's
//! spare partition (the decode SLO still guarded by a worst-case
//! estimate).

use std::collections::{HashMap, HashSet, VecDeque};

use estimator::{ContentionGuard, GuardQuery, SoloPredictor};
use gpusim::{ClusterSpec, CtxId, GroupId, LinkId};
use modelspec::{ModelSpec, Parallelism, SeqState};
use serving::lease::{KvLease, LeaseTable};
use serving::lifecycle::{EngineCounters, Lifecycle};
use serving::{
    kv_pool_capacity_tokens, CrashVictim, DecodeBatch, DecodeSlot, RecoveryClass, ReqId, Scheduler,
    ServeCtx, SloSpec,
};
use simcore::SimDuration;

#[derive(Debug)]
struct PrefillReq {
    id: ReqId,
    seq: SeqState,
    lease: KvLease,
}

#[derive(Debug, Clone, Copy)]
struct Admit {
    id: ReqId,
    context: u64,
    /// The context is already resident on the decode instance (local
    /// multiplexed prefill — no migration needed).
    local: bool,
}

/// Tag name space.
const TAG_DECODE: u64 = u64::MAX;
const TAG_P_INSTANCE: u64 = u64::MAX - 1;

/// The hybrid scheduler. See the [module docs](self).
#[derive(Debug)]
pub struct HybridPd {
    model: ModelSpec,
    par: Parallelism,
    slo: SloSpec,
    predictor: SoloPredictor,
    guard: ContentionGuard,
    p_pool_capacity: u64,
    d_pool_capacity: u64,
    /// Queue length (in uncached tokens) beyond which prefill overflows
    /// to the decode instance.
    overflow_threshold_tokens: u64,

    p_group: Option<GroupId>,
    p_ctx: Option<CtxId>,
    d_group: Option<GroupId>,
    d_decode_ctx: Option<CtxId>,
    d_prefill_ctx: Option<CtxId>,
    decode_sms: u32,
    link: Option<LinkId>,
    p_table: Option<LeaseTable>,
    d_table: Option<LeaseTable>,
    lifecycle: Lifecycle,

    waiting: VecDeque<ReqId>,
    p_inflight: Option<Vec<PrefillReq>>,
    /// Overflow prefill running multiplexed on the decode instance.
    mux_inflight: Option<PrefillReq>,
    next_mux_tag: u64,
    mux_tags: HashMap<u64, ()>,
    transferring: HashMap<u64, Admit>,
    pending_admit: VecDeque<Admit>,
    decode: DecodeBatch,
    decode_inflight: bool,
    next_transfer_tag: u64,
    overflow_count: u64,
    /// The prefill instance lost a device; instance prefills halt.
    p_down: bool,
    /// The decode instance lost a device; decode and overflow prefill
    /// launches halt.
    d_down: bool,
    /// Crash victims whose prefill-pool prefix was eviction-protected.
    crash_protected: HashSet<ReqId>,
}

impl HybridPd {
    /// Creates the hybrid scheduler on a half/half split.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit a half-cluster instance.
    pub fn new(
        model: &ModelSpec,
        cluster: &ClusterSpec,
        slo: SloSpec,
        predictor: SoloPredictor,
        guard: ContentionGuard,
    ) -> HybridPd {
        let half = cluster.num_gpus / 2;
        assert!(half > 0, "need at least two GPUs");
        let capacity = kv_pool_capacity_tokens(cluster, model, half, half, 0.0);
        assert!(
            capacity > 0,
            "model does not fit on a half-cluster instance"
        );
        HybridPd {
            model: model.clone(),
            par: Parallelism::tp(half, cluster.nvlink_gbs),
            slo,
            predictor,
            guard,
            p_pool_capacity: capacity,
            d_pool_capacity: capacity,
            overflow_threshold_tokens: 8_192,
            p_group: None,
            p_ctx: None,
            d_group: None,
            d_decode_ctx: None,
            d_prefill_ctx: None,
            decode_sms: 0,
            link: None,
            p_table: None,
            d_table: None,
            lifecycle: Lifecycle::default(),
            waiting: VecDeque::new(),
            p_inflight: None,
            mux_inflight: None,
            next_mux_tag: 1,
            mux_tags: HashMap::new(),
            transferring: HashMap::new(),
            pending_admit: VecDeque::new(),
            decode: DecodeBatch::new(),
            decode_inflight: false,
            next_transfer_tag: 1_000_000,
            overflow_count: 0,
            p_down: false,
            d_down: false,
            crash_protected: HashSet::new(),
        }
    }

    /// Prefills absorbed by the decode instance's spare SMs.
    pub fn overflow_prefills(&self) -> u64 {
        self.overflow_count
    }

    fn queued_uncached_tokens(&self, ctx: &ServeCtx) -> u64 {
        let table = self.p_table.as_ref().expect("table");
        self.waiting
            .iter()
            .map(|&id| {
                let spec = ctx.request(id);
                let blocks = spec.content.blocks(table.block_size());
                spec.input_tokens() - table.peek_prefix(&blocks)
            })
            .sum()
    }

    fn try_dispatch_prefills(&mut self, ctx: &mut ServeCtx) {
        self.try_start_instance_prefill(ctx);
        // Overflow path: backlogged and the decode instance has spare SMs.
        if self.mux_inflight.is_none()
            && !self.waiting.is_empty()
            && self.queued_uncached_tokens(ctx) > self.overflow_threshold_tokens
        {
            self.try_start_mux_prefill(ctx);
        }
    }

    fn try_start_instance_prefill(&mut self, ctx: &mut ServeCtx) {
        if self.p_inflight.is_some() || self.waiting.is_empty() || self.p_down {
            return;
        }
        let mut reqs = Vec::new();
        let mut new_total = 0u64;
        while let Some(&id) = self.waiting.front() {
            if reqs.len() >= 32 || new_total > 16_384 {
                break;
            }
            let spec = ctx.request(id).clone();
            let table = self.p_table.as_mut().expect("table");
            let blocks = spec.content.blocks(table.block_size());
            let reused = table.peek_prefix(&blocks);
            let new_tokens = spec.input_tokens() - reused;
            if !table.try_alloc_private(new_tokens, ctx.now()) {
                if reqs.is_empty() && self.decode.is_empty() && self.mux_inflight.is_none() {
                    self.waiting.pop_front();
                    ctx.finish_request(id);
                    self.lifecycle.drop_request(id);
                    continue;
                }
                break;
            }
            let mut lease = table.lease_prefix(&blocks, ctx.now());
            if self.crash_protected.remove(&id) {
                // Re-admitted crash victim: the lease's lock now pins the
                // prefix, so the advisory protection comes off.
                table.unprotect_prefix(&blocks);
            }
            let seq = SeqState::new(
                spec.input_tokens() - lease.matched_tokens(),
                lease.matched_tokens(),
            );
            lease.absorb_private(seq.new_tokens);
            new_total += seq.new_tokens;
            self.waiting.pop_front();
            self.lifecycle.admit(id);
            reqs.push(PrefillReq { id, seq, lease });
        }
        if reqs.is_empty() {
            return;
        }
        let batch: Vec<SeqState> = reqs.iter().map(|r| r.seq).collect();
        let work = self.model.prefill_full_work(&batch, &self.par);
        let launch = SimDuration::from_secs(
            ctx.gpu.spec().layer_graph_launch.as_secs() * self.model.num_layers as f64,
        );
        let ready = ctx.now() + launch;
        let (g, c) = (self.p_group.expect("started"), self.p_ctx.expect("started"));
        ctx.gpu.submit(g, c, work, ready, TAG_P_INSTANCE);
        self.p_inflight = Some(reqs);
    }

    /// Runs one overflow prefill on the decode instance's prefill
    /// partition (spatially multiplexed with decode).
    fn try_start_mux_prefill(&mut self, ctx: &mut ServeCtx) {
        if self.d_down {
            return;
        }
        let Some(&id) = self.waiting.front() else {
            return;
        };
        let spec = ctx.request(id).clone();
        let table = self.d_table.as_mut().expect("table");
        // The multiplexed prefill computes into the decode pool directly
        // (no migration needed afterwards); +1 covers the first generated
        // token's KV entry.
        let Some(lease) = table.try_lease_private(spec.input_tokens() + 1, ctx.now()) else {
            return;
        };
        self.waiting.pop_front();
        self.lifecycle.admit(id);
        // No cross-instance cache: the decode side recomputes the full
        // input.
        let seq = SeqState::new(spec.input_tokens(), 0);
        let work = self.model.prefill_full_work(&[seq], &self.par);
        let launch = SimDuration::from_secs(
            ctx.gpu.spec().layer_graph_launch.as_secs() * self.model.num_layers as f64,
        );
        let ready = ctx.now() + launch;
        let (g, c) = (
            self.d_group.expect("started"),
            self.d_prefill_ctx.expect("started"),
        );
        let tag = self.next_mux_tag;
        self.next_mux_tag += 1;
        self.mux_tags.insert(tag, ());
        ctx.gpu.submit(g, c, work, ready, tag);
        self.mux_inflight = Some(PrefillReq { id, seq, lease });
        self.overflow_count += 1;
    }

    fn on_instance_prefill_done(&mut self, ctx: &mut ServeCtx) {
        let reqs = self.p_inflight.take().expect("in flight");
        for r in reqs {
            let spec = ctx.request(r.id).clone();
            if ctx.tokens_emitted(r.id) == 0 {
                ctx.emit_tokens(r.id, 1);
            }
            let table = self.p_table.as_mut().expect("table");
            let blocks = spec.content.blocks(table.block_size());
            table.release_and_commit(r.lease, &blocks, ctx.now());
            let context = spec.input_tokens() + 1;
            let bytes = context as f64 * self.model.kv_bytes_per_token() / self.par.tp as f64;
            let tag = self.next_transfer_tag;
            self.next_transfer_tag += 1;
            ctx.gpu
                .submit_transfer(self.link.expect("link"), bytes, tag);
            self.transferring.insert(
                tag,
                Admit {
                    id: r.id,
                    context,
                    local: false,
                },
            );
        }
        self.try_dispatch_prefills(ctx);
    }

    fn on_mux_prefill_done(&mut self, ctx: &mut ServeCtx) {
        let r = self.mux_inflight.take().expect("in flight");
        if ctx.tokens_emitted(r.id) == 0 {
            ctx.emit_tokens(r.id, 1);
        }
        let spec = ctx.request(r.id).clone();
        // Already resident in the decode pool; admit directly. The KV
        // stays raw in the table across the `Copy` admit record and is
        // re-wrapped into a lease when the decode slot forms.
        self.d_table.as_mut().expect("table").detach(r.lease);
        self.pending_admit.push_back(Admit {
            id: r.id,
            context: spec.input_tokens() + 1,
            local: true,
        });
        self.try_admit_decode(ctx);
        self.try_dispatch_prefills(ctx);
    }

    fn try_admit_decode(&mut self, ctx: &mut ServeCtx) {
        if self.d_down {
            // Migrated contexts buffer without allocations while the
            // decode instance is down; a permanent crash leaks nothing.
            return;
        }
        while let Some(&admit) = self.pending_admit.front() {
            let table = self.d_table.as_mut().expect("table");
            if !admit.local && !table.try_alloc_private(admit.context, ctx.now()) {
                break;
            }
            self.pending_admit.pop_front();
            let spec = ctx.request(admit.id).clone();
            let emitted = ctx.tokens_emitted(admit.id);
            let remaining = spec.output_tokens.saturating_sub(emitted);
            let table = self.d_table.as_mut().expect("table");
            if remaining == 0 {
                table.free_private(admit.context);
                ctx.finish_request(admit.id);
                self.lifecycle.finish(admit.id);
                continue;
            }
            self.lifecycle.begin_decode(admit.id);
            self.decode.push(DecodeSlot {
                id: admit.id,
                context: admit.context,
                remaining_out: remaining,
                lease: table.lease_private(admit.context),
            });
        }
        self.launch_decode(ctx);
    }

    /// Chooses the decode partition: smallest configuration meeting the
    /// worst-case TBT, considering the multiplexed prefill as co-runner.
    fn desired_decode_sms(&self, ctx: &ServeCtx) -> u32 {
        let configs = ctx.gpu.spec().partition_configs();
        if self.decode.is_empty() {
            return configs[0];
        }
        let ctxs: Vec<u64> = self.decode.contexts().collect();
        let budget = self.slo.tbt.as_secs() * 0.9 - ctx.gpu.spec().graph_launch.as_secs();
        for &sms in &configs {
            let solo = self.predictor.decode_latency(sms, &ctxs);
            let q = GuardQuery {
                prefill_new: self
                    .mux_inflight
                    .as_ref()
                    .map(|r| r.seq.new_tokens)
                    .unwrap_or(0),
                prefill_reused: 0,
                decode_batch: ctxs.len(),
                decode_context: ctxs.iter().sum::<u64>() / ctxs.len() as u64,
                decode_sms: sms,
            };
            if solo * self.guard.factor(&q) <= budget {
                return sms;
            }
        }
        *configs.last().expect("non-empty")
    }

    fn launch_decode(&mut self, ctx: &mut ServeCtx) {
        if self.decode_inflight || self.decode.is_empty() || self.d_down {
            return;
        }
        let now = ctx.now();
        let table = self.d_table.as_mut().expect("table");
        for id in self.decode.grow_for_iteration(table, now) {
            self.waiting.push_front(id);
            self.lifecycle.requeue(id);
        }
        if self.decode.is_empty() {
            return;
        }
        // Re-partition the decode instance when possible.
        let desired = self.desired_decode_sms(ctx);
        let (g, dc, pc) = (
            self.d_group.expect("started"),
            self.d_decode_ctx.expect("started"),
            self.d_prefill_ctx.expect("started"),
        );
        if desired != self.decode_sms && ctx.gpu.is_idle(g, dc) && ctx.gpu.is_idle(g, pc) {
            let sm_count = ctx.gpu.spec().sm_count;
            if desired < self.decode_sms {
                ctx.gpu.resize_context(g, dc, desired);
                ctx.gpu.resize_context(g, pc, sm_count - desired);
            } else {
                ctx.gpu.resize_context(g, pc, sm_count - desired);
                ctx.gpu.resize_context(g, dc, desired);
            }
            self.decode_sms = desired;
        }
        let ctxs: Vec<u64> = self.decode.contexts().collect();
        let work = self.model.decode_iter_work(&ctxs, &self.par);
        let ready = now + ctx.gpu.spec().graph_launch;
        ctx.gpu.submit(g, dc, work, ready, TAG_DECODE);
        self.decode_inflight = true;
    }

    fn on_decode_done(&mut self, ctx: &mut ServeCtx) {
        self.decode_inflight = false;
        for slot in self.decode.advance_iteration(ctx) {
            self.d_table.as_mut().expect("table").release(slot.lease);
            ctx.finish_request(slot.id);
            self.lifecycle.finish(slot.id);
        }
        self.try_admit_decode(ctx);
        self.launch_decode(ctx);
        self.try_dispatch_prefills(ctx);
    }

    /// Books one decode-instance crash victim: protects whatever prompt
    /// prefix the prefill pool has cached and requeues for re-prefill.
    fn revoke_decode_victim(&mut self, id: ReqId, context: u64, ctx: &mut ServeCtx) -> CrashVictim {
        let spec = ctx.request(id).clone();
        let p_table = self.p_table.as_mut().expect("table");
        p_table.protect_prefix(&spec.content.blocks(p_table.block_size()));
        self.crash_protected.insert(id);
        self.lifecycle.requeue(id);
        CrashVictim {
            id,
            class: RecoveryClass::ReprefillFull,
            lost_tokens: context,
        }
    }
}

impl Scheduler for HybridPd {
    fn on_start(&mut self, ctx: &mut ServeCtx) {
        let n = ctx.gpu.num_gpus();
        let half = n / 2;
        let sms = ctx.gpu.spec().sm_count;
        let pg = ctx.gpu.create_group((0..half).collect());
        let dg = ctx.gpu.create_group((half..n).collect());
        self.p_ctx = Some(ctx.gpu.set_context(pg, sms));
        self.decode_sms = ctx.gpu.spec().partition_configs()[0];
        self.d_decode_ctx = Some(ctx.gpu.set_context(dg, self.decode_sms));
        self.d_prefill_ctx = Some(ctx.gpu.set_context(dg, sms - self.decode_sms));
        self.p_group = Some(pg);
        self.d_group = Some(dg);
        self.link = Some(ctx.gpu.create_link(0.0, SimDuration::from_micros(5.0)));
        self.p_table = Some(LeaseTable::new(self.p_pool_capacity, 64));
        self.d_table = Some(LeaseTable::new(self.d_pool_capacity, 64));
    }

    fn on_arrival(&mut self, id: ReqId, ctx: &mut ServeCtx) {
        self.waiting.push_back(id);
        self.try_dispatch_prefills(ctx);
    }

    fn on_kernel_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        if tag == TAG_DECODE {
            self.on_decode_done(ctx);
        } else if tag == TAG_P_INSTANCE {
            self.on_instance_prefill_done(ctx);
        } else if self.mux_tags.remove(&tag).is_some() {
            self.on_mux_prefill_done(ctx);
        }
    }

    fn on_transfer_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        if let Some(admit) = self.transferring.remove(&tag) {
            self.pending_admit.push_back(admit);
            self.try_admit_decode(ctx);
        }
    }

    fn groups(&self) -> Vec<GroupId> {
        self.p_group.into_iter().chain(self.d_group).collect()
    }

    fn streams(&self) -> Vec<(GroupId, CtxId)> {
        let mut v = Vec::new();
        if let (Some(g), Some(c)) = (self.p_group, self.p_ctx) {
            v.push((g, c));
        }
        if let (Some(g), Some(c)) = (self.d_group, self.d_decode_ctx) {
            v.push((g, c));
        }
        v
    }

    fn counters(&self) -> EngineCounters {
        self.lifecycle.counters()
    }

    fn lease_tables(&self) -> Vec<&LeaseTable> {
        self.p_table.iter().chain(self.d_table.iter()).collect()
    }

    fn lease_tables_mut(&mut self) -> Vec<&mut LeaseTable> {
        self.p_table
            .iter_mut()
            .chain(self.d_table.iter_mut())
            .collect()
    }

    fn on_shed(&mut self, id: ReqId, _ctx: &mut ServeCtx) -> bool {
        if let Some(pos) = self.waiting.iter().position(|&w| w == id) {
            self.waiting.remove(pos);
            self.lifecycle.drop_request(id);
            return true;
        }
        false
    }

    fn on_gpu_lost(
        &mut self,
        gpu: u32,
        _cancelled: &[u64],
        ctx: &mut ServeCtx,
    ) -> Vec<CrashVictim> {
        let half = ctx.gpu.num_gpus() / 2;
        let mut victims = Vec::new();
        if gpu < half {
            // Prefill instance died: only the in-flight instance batch is
            // lost; the decode instance (and any overflow prefill it is
            // multiplexing) carries on.
            self.p_down = true;
            for r in self.p_inflight.take().into_iter().flatten() {
                let spec = ctx.request(r.id).clone();
                let table = self.p_table.as_mut().expect("table");
                let blocks = spec.content.blocks(table.block_size());
                table.release(r.lease);
                table.protect_prefix(&blocks);
                self.crash_protected.insert(r.id);
                self.lifecycle.requeue(r.id);
                victims.push(CrashVictim {
                    id: r.id,
                    class: RecoveryClass::ReprefillFull,
                    lost_tokens: r.seq.new_tokens,
                });
            }
        } else {
            // Decode instance died: the decode batch, the multiplexed
            // overflow prefill and every context parked for admission
            // lose their device-resident KV.
            self.d_down = true;
            self.decode_inflight = false;
            self.mux_tags.clear();
            if let Some(r) = self.mux_inflight.take() {
                self.d_table.as_mut().expect("table").release(r.lease);
                let v = self.revoke_decode_victim(r.id, r.seq.new_tokens, ctx);
                victims.push(v);
            }
            for slot in self.decode.drain() {
                self.d_table.as_mut().expect("table").release(slot.lease);
                let v = self.revoke_decode_victim(slot.id, slot.context, ctx);
                victims.push(v);
            }
            for admit in std::mem::take(&mut self.pending_admit) {
                if admit.local {
                    // Locally-prefilled contexts sit raw in the decode
                    // pool between detach and admission.
                    self.d_table
                        .as_mut()
                        .expect("table")
                        .free_private(admit.context);
                }
                let v = self.revoke_decode_victim(admit.id, admit.context, ctx);
                victims.push(v);
            }
            // In-flight transfers hold no decode-side allocation yet; the
            // orphaned tags complete into no-ops. Drain in tag order —
            // victim order decides the requeue event order.
            for (_, admit) in serving::order::drain_sorted(&mut self.transferring) {
                let v = self.revoke_decode_victim(admit.id, admit.context, ctx);
                victims.push(v);
            }
        }
        victims
    }

    fn on_gpu_recovered(&mut self, gpu: u32, ctx: &mut ServeCtx) {
        let half = ctx.gpu.num_gpus() / 2;
        if gpu < half {
            if let Some(g) = self.p_group {
                if ctx.gpu.group_has_dead_gpu(g) {
                    return;
                }
            }
            self.p_down = false;
        } else {
            if let Some(g) = self.d_group {
                if ctx.gpu.group_has_dead_gpu(g) {
                    return;
                }
            }
            self.d_down = false;
            self.try_admit_decode(ctx);
            self.launch_decode(ctx);
        }
        self.try_dispatch_prefills(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GpuSim;
    use serving::Driver;
    use simcore::SimRng;
    use workload::{generate, WorkloadKind};

    fn build() -> (ModelSpec, ClusterSpec, SloSpec, HybridPd) {
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama8b();
        let slo = SloSpec::llama8b();
        let par = Parallelism::tp(4, cluster.nvlink_gbs);
        let predictor = SoloPredictor::profile(&model, &cluster, &par, &[16, 48, 92, 108]);
        let guard = ContentionGuard::flat(1.2);
        let engine = HybridPd::new(&model, &cluster, slo, predictor, guard);
        (model, cluster, slo, engine)
    }

    #[test]
    fn completes_and_absorbs_overflow() {
        let (_, cluster, slo, mut engine) = build();
        let mut rng = SimRng::seed_from(61);
        // High rate: the prefill instance backlogs, overflow kicks in.
        let reqs = generate(WorkloadKind::Conversation, 120, 8.0, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        assert_eq!(rep.finished, rep.total);
        assert!(
            engine.overflow_prefills() > 0,
            "overflow multiplexing never engaged"
        );
    }

    #[test]
    fn decode_slo_holds_despite_multiplexed_prefill() {
        let (_, cluster, slo, mut engine) = build();
        let mut rng = SimRng::seed_from(62);
        let reqs = generate(WorkloadKind::ToolAgent, 100, 6.0, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        assert_eq!(rep.finished, rep.total);
        assert!(
            rep.tbt.p99() <= slo.tbt.as_secs() * 1.1,
            "p99 TBT {} under overflow multiplexing",
            rep.tbt.p99()
        );
    }

    #[test]
    fn light_load_never_overflows() {
        let (_, cluster, slo, mut engine) = build();
        let mut rng = SimRng::seed_from(63);
        let reqs = generate(WorkloadKind::ShareGpt, 30, 0.5, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        assert_eq!(rep.finished, rep.total);
        assert_eq!(engine.overflow_prefills(), 0);
    }
}
