//! SGLang-PD: static 1:1 prefill/decode disaggregation.
//!
//! Two 4-GPU TP-4 instances. The prefill instance runs whole prefill
//! phases and caches computed prefixes in **its own** pool; finished
//! prefills migrate their KV over NVLink to the decode instance, which
//! holds active contexts in **its own** pool. Each instance pays the full
//! model weights on half the GPUs, so the combined cache capacity is far
//! below an aggregated deployment — the §2.3.1 drawback that shows up as
//! stalls on cache-hungry workloads.

use std::collections::{HashMap, HashSet, VecDeque};

use gpusim::{ClusterSpec, CtxId, GroupId, LinkId};
use modelspec::{ModelSpec, Parallelism, SeqState};
use serving::lease::{KvLease, LeaseTable};
use serving::lifecycle::{EngineCounters, Lifecycle};
use serving::{
    kv_pool_capacity_tokens, CrashVictim, DecodeBatch, DecodeSlot, RecoveryClass, ReqId, Scheduler,
    ServeCtx, SloSpec,
};
use simcore::SimDuration;

/// One request in the prefill instance.
#[derive(Debug)]
struct PrefillReq {
    id: ReqId,
    seq: SeqState,
    lease: KvLease,
    /// Decode-pool tokens reserved up front (§4.3: "the system must
    /// still reserve slots for KV caches during prefill and decode";
    /// prefill stalls when the decode pool cannot host the context).
    /// Held raw in the decode table until the transfer lands.
    reserved: u64,
}

/// A migrated context waiting for (or holding) decode-pool space.
#[derive(Debug, Clone, Copy)]
struct Admit {
    id: ReqId,
    context: u64,
}

/// The static-disaggregation scheduler. See the [module docs](self).
#[derive(Debug)]
pub struct SglangPd {
    model: ModelSpec,
    par: Parallelism,
    p_pool_capacity: u64,
    d_pool_capacity: u64,
    p_group: Option<GroupId>,
    p_ctx: Option<CtxId>,
    d_group: Option<GroupId>,
    d_ctx: Option<CtxId>,
    link: Option<LinkId>,
    p_table: Option<LeaseTable>,
    d_table: Option<LeaseTable>,
    lifecycle: Lifecycle,
    waiting: VecDeque<ReqId>,
    prefill: Option<Vec<PrefillReq>>,
    transferring: HashMap<u64, Admit>,
    pending_admit: VecDeque<Admit>,
    decode: DecodeBatch,
    decode_inflight: bool,
    next_tag: u64,
    max_prefill_batch_tokens: u64,
    /// The prefill instance lost a device; prefill launches halt.
    p_down: bool,
    /// The decode instance lost a device; decode launches halt.
    d_down: bool,
    /// Crash victims whose prefill-pool prefix was eviction-protected.
    crash_protected: HashSet<ReqId>,
}

impl SglangPd {
    /// Creates the scheduler: prefill on GPUs 0–3, decode on 4–7, both
    /// TP-4, each with its own KV pool.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit on a 4-GPU instance (e.g.
    /// Qwen-235B — the paper notes disaggregation is infeasible there).
    pub fn new(model: &ModelSpec, cluster: &ClusterSpec, _slo: SloSpec) -> SglangPd {
        assert!(cluster.num_gpus >= 2, "disaggregation needs ≥ 2 GPUs");
        let half = cluster.num_gpus / 2;
        let capacity = kv_pool_capacity_tokens(cluster, model, half, half, 0.0);
        assert!(
            capacity > 0,
            "model does not fit on a half-cluster instance"
        );
        SglangPd {
            model: model.clone(),
            par: Parallelism::tp(half, cluster.nvlink_gbs),
            p_pool_capacity: capacity,
            d_pool_capacity: capacity,
            p_group: None,
            p_ctx: None,
            d_group: None,
            d_ctx: None,
            link: None,
            p_table: None,
            d_table: None,
            lifecycle: Lifecycle::new(),
            waiting: VecDeque::new(),
            prefill: None,
            transferring: HashMap::new(),
            pending_admit: VecDeque::new(),
            decode: DecodeBatch::new(),
            decode_inflight: false,
            next_tag: 1,
            max_prefill_batch_tokens: 16_384,
            p_down: false,
            d_down: false,
            crash_protected: HashSet::new(),
        }
    }

    /// Prefill-instance pool statistics (cache hit rate under the halved
    /// capacity — Fig. 5's effect).
    pub fn prefill_pool_stats(&self) -> Option<kvcache::PoolStats> {
        self.p_table.as_ref().map(|t| t.stats())
    }

    /// Requests dropped because they could never fit the pool.
    pub fn dropped(&self) -> u64 {
        self.lifecycle.counters().drops
    }

    fn try_start_prefill(&mut self, ctx: &mut ServeCtx) {
        // A dead decode instance also stalls prefill: the up-front
        // decode-slot reservation has nowhere to land.
        if self.prefill.is_some() || self.waiting.is_empty() || self.p_down || self.d_down {
            return;
        }
        let mut reqs = Vec::new();
        let mut new_total = 0u64;
        while let Some(&id) = self.waiting.front() {
            if reqs.len() >= 32 {
                break;
            }
            let spec = ctx.request(id).clone();
            let table = self.p_table.as_mut().expect("table");
            let blocks = spec.content.blocks(table.block_size());
            let reused = table.peek_prefix(&blocks);
            let new_tokens = spec.input_tokens() - reused;
            if !reqs.is_empty() && new_total + new_tokens > self.max_prefill_batch_tokens {
                break;
            }
            if !table.try_alloc_private(new_tokens, ctx.now()) {
                if reqs.is_empty() && self.prefill.is_none() && self.idle_everywhere() {
                    self.waiting.pop_front();
                    ctx.finish_request(id);
                    self.lifecycle.drop_request(id);
                    continue;
                }
                break;
            }
            // Reserve the decode-instance slot before prefilling; when
            // the decode pool is exhausted, prefill stalls (the
            // OpenThoughts pathology of §4.3).
            let reserved = spec.input_tokens() + 1;
            if !self
                .d_table
                .as_mut()
                .expect("table")
                .try_alloc_private(reserved, ctx.now())
            {
                self.p_table
                    .as_mut()
                    .expect("table")
                    .free_private(new_tokens);
                if reqs.is_empty() && self.prefill.is_none() && self.idle_everywhere() {
                    self.waiting.pop_front();
                    ctx.finish_request(id);
                    self.lifecycle.drop_request(id);
                    continue;
                }
                break;
            }
            let table = self.p_table.as_mut().expect("table");
            let mut lease = table.lease_prefix(&blocks, ctx.now());
            if self.crash_protected.remove(&id) {
                // Re-admitted crash victim: the lease's lock now pins the
                // prefix, so the advisory protection comes off.
                table.unprotect_prefix(&blocks);
            }
            let seq = SeqState::new(
                spec.input_tokens() - lease.matched_tokens(),
                lease.matched_tokens(),
            );
            lease.absorb_private(seq.new_tokens);
            new_total += seq.new_tokens;
            self.waiting.pop_front();
            self.lifecycle.admit(id);
            reqs.push(PrefillReq {
                id,
                seq,
                lease,
                reserved,
            });
        }
        if reqs.is_empty() {
            return;
        }
        let batch: Vec<SeqState> = reqs.iter().map(|r| r.seq).collect();
        let work = self.model.prefill_full_work(&batch, &self.par);
        let spec = ctx.gpu.spec();
        let launch = SimDuration::from_secs(
            spec.layer_graph_launch.as_secs() * self.model.num_layers as f64,
        );
        let ready = ctx.now() + launch;
        let (g, c) = (self.p_group.expect("started"), self.p_ctx.expect("started"));
        ctx.gpu.submit(g, c, work, ready, 0);
        self.prefill = Some(reqs);
    }

    fn idle_everywhere(&self) -> bool {
        self.decode.is_empty()
            && self.transferring.is_empty()
            && self.pending_admit.is_empty()
            && !self.decode_inflight
    }

    fn on_prefill_done(&mut self, ctx: &mut ServeCtx) {
        let reqs = self.prefill.take().expect("prefill in flight");
        for r in reqs {
            let spec = ctx.request(r.id).clone();
            if ctx.tokens_emitted(r.id) == 0 {
                ctx.emit_tokens(r.id, 1);
            }
            // Cache the computed prompt in the prefill pool for future
            // turns, then release the working allocation.
            let table = self.p_table.as_mut().expect("table");
            let blocks = spec.content.blocks(table.block_size());
            table.release_and_commit(r.lease, &blocks, ctx.now());
            // Migrate the KV cache to the decode instance (sharded over
            // the instance's NVLink pairs).
            let context = spec.input_tokens() + 1;
            let bytes = context as f64 * self.model.kv_bytes_per_token() / self.par.tp as f64;
            let tag = self.next_tag;
            self.next_tag += 1;
            ctx.gpu
                .submit_transfer(self.link.expect("link"), bytes, tag);
            debug_assert_eq!(r.reserved, context, "reservation covers the context");
            self.transferring.insert(tag, Admit { id: r.id, context });
        }
        self.try_start_prefill(ctx);
    }

    fn try_admit_decode(&mut self, ctx: &mut ServeCtx) {
        while let Some(&admit) = self.pending_admit.front() {
            // Space was reserved at prefill admission; join directly.
            self.pending_admit.pop_front();
            let spec = ctx.request(admit.id).clone();
            let emitted = ctx.tokens_emitted(admit.id);
            let remaining = spec.output_tokens.saturating_sub(emitted);
            if remaining == 0 {
                self.d_table
                    .as_mut()
                    .expect("table")
                    .free_private(admit.context);
                ctx.finish_request(admit.id);
                self.lifecycle.finish(admit.id);
                continue;
            }
            self.lifecycle.begin_decode(admit.id);
            let lease = self
                .d_table
                .as_mut()
                .expect("table")
                .lease_private(admit.context);
            self.decode.push(DecodeSlot {
                id: admit.id,
                context: admit.context,
                remaining_out: remaining,
                lease,
            });
        }
        self.launch_decode(ctx);
    }

    fn launch_decode(&mut self, ctx: &mut ServeCtx) {
        if self.decode_inflight || self.decode.is_empty() || self.d_down {
            return;
        }
        let now = ctx.now();
        // Decode pool exhausted: requeue the newest contexts to the
        // prefill instance (full recompute there).
        let table = self.d_table.as_mut().expect("table");
        for id in self.decode.grow_for_iteration(table, now) {
            self.waiting.push_front(id);
            self.lifecycle.requeue(id);
        }
        if self.decode.is_empty() {
            return;
        }
        let ctxs: Vec<u64> = self.decode.contexts().collect();
        let work = self.model.decode_iter_work(&ctxs, &self.par);
        let ready = now + ctx.gpu.spec().graph_launch;
        let (g, c) = (self.d_group.expect("started"), self.d_ctx.expect("started"));
        ctx.gpu.submit(g, c, work, ready, u64::MAX);
        self.decode_inflight = true;
    }

    /// Books one decode-side crash victim: protects its cached prompt in
    /// the prefill pool and requeues it for a full re-prefill.
    fn revoke_decode_victim(&mut self, id: ReqId, context: u64, ctx: &mut ServeCtx) -> CrashVictim {
        let spec = ctx.request(id).clone();
        let p_table = self.p_table.as_mut().expect("table");
        p_table.protect_prefix(&spec.content.blocks(p_table.block_size()));
        self.crash_protected.insert(id);
        self.lifecycle.requeue(id);
        CrashVictim {
            id,
            class: RecoveryClass::ReprefillFull,
            lost_tokens: context,
        }
    }

    fn on_decode_done(&mut self, ctx: &mut ServeCtx) {
        self.decode_inflight = false;
        for slot in self.decode.advance_iteration(ctx) {
            self.d_table.as_mut().expect("table").release(slot.lease);
            ctx.finish_request(slot.id);
            self.lifecycle.finish(slot.id);
        }
        self.try_admit_decode(ctx);
        self.launch_decode(ctx);
        self.try_start_prefill(ctx);
    }
}

impl Scheduler for SglangPd {
    fn on_start(&mut self, ctx: &mut ServeCtx) {
        let n = ctx.gpu.num_gpus();
        let half = n / 2;
        let sms = ctx.gpu.spec().sm_count;
        let pg = ctx.gpu.create_group((0..half).collect());
        let dg = ctx.gpu.create_group((half..n).collect());
        self.p_ctx = Some(ctx.gpu.set_context(pg, sms));
        self.d_ctx = Some(ctx.gpu.set_context(dg, sms));
        self.p_group = Some(pg);
        self.d_group = Some(dg);
        self.link = Some(ctx.gpu.create_link(0.0, SimDuration::from_micros(5.0)));
        self.p_table = Some(LeaseTable::new(self.p_pool_capacity, 64));
        self.d_table = Some(LeaseTable::new(self.d_pool_capacity, 64));
    }

    fn on_arrival(&mut self, id: ReqId, ctx: &mut ServeCtx) {
        self.waiting.push_back(id);
        self.try_start_prefill(ctx);
    }

    fn on_kernel_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        if tag == u64::MAX {
            self.on_decode_done(ctx);
        } else {
            self.on_prefill_done(ctx);
        }
    }

    fn on_transfer_done(&mut self, tag: u64, ctx: &mut ServeCtx) {
        if let Some(admit) = self.transferring.remove(&tag) {
            self.pending_admit.push_back(admit);
            self.try_admit_decode(ctx);
        }
    }

    fn groups(&self) -> Vec<GroupId> {
        self.p_group.into_iter().chain(self.d_group).collect()
    }

    fn streams(&self) -> Vec<(GroupId, CtxId)> {
        let mut v = Vec::new();
        if let (Some(g), Some(c)) = (self.p_group, self.p_ctx) {
            v.push((g, c));
        }
        if let (Some(g), Some(c)) = (self.d_group, self.d_ctx) {
            v.push((g, c));
        }
        v
    }

    fn counters(&self) -> EngineCounters {
        self.lifecycle.counters()
    }

    fn lease_tables(&self) -> Vec<&LeaseTable> {
        self.p_table.iter().chain(self.d_table.iter()).collect()
    }

    fn lease_tables_mut(&mut self) -> Vec<&mut LeaseTable> {
        self.p_table
            .iter_mut()
            .chain(self.d_table.iter_mut())
            .collect()
    }

    fn on_shed(&mut self, id: ReqId, _ctx: &mut ServeCtx) -> bool {
        if let Some(pos) = self.waiting.iter().position(|&w| w == id) {
            self.waiting.remove(pos);
            self.lifecycle.drop_request(id);
            return true;
        }
        false
    }

    fn on_gpu_lost(
        &mut self,
        gpu: u32,
        _cancelled: &[u64],
        ctx: &mut ServeCtx,
    ) -> Vec<CrashVictim> {
        let half = ctx.gpu.num_gpus() / 2;
        let mut victims = Vec::new();
        if gpu < half {
            // Prefill instance died: only the in-flight prefill batch is
            // lost; migrated contexts and the decode instance carry on.
            self.p_down = true;
            for r in self.prefill.take().into_iter().flatten() {
                let spec = ctx.request(r.id).clone();
                let table = self.p_table.as_mut().expect("table");
                let blocks = spec.content.blocks(table.block_size());
                table.release(r.lease);
                table.protect_prefix(&blocks);
                self.crash_protected.insert(r.id);
                self.d_table
                    .as_mut()
                    .expect("table")
                    .free_private(r.reserved);
                self.lifecycle.requeue(r.id);
                victims.push(CrashVictim {
                    id: r.id,
                    class: RecoveryClass::ReprefillFull,
                    lost_tokens: r.seq.new_tokens,
                });
            }
        } else {
            // Decode instance died: every active context — batched,
            // awaiting admission, or mid-transfer — loses its KV and must
            // re-prefill from the prefill instance's cached prompt.
            self.d_down = true;
            self.decode_inflight = false;
            for slot in self.decode.drain() {
                self.d_table.as_mut().expect("table").release(slot.lease);
                victims.push(self.revoke_decode_victim(slot.id, slot.context, ctx));
            }
            for admit in std::mem::take(&mut self.pending_admit) {
                self.d_table
                    .as_mut()
                    .expect("table")
                    .free_private(admit.context);
                victims.push(self.revoke_decode_victim(admit.id, admit.context, ctx));
            }
            // In-flight transfers have no destination any more: drop the
            // reservation and let the orphaned tag complete into a no-op.
            // Drain in tag order — victim order decides the requeue
            // event order.
            for (_, admit) in serving::order::drain_sorted(&mut self.transferring) {
                self.d_table
                    .as_mut()
                    .expect("table")
                    .free_private(admit.context);
                victims.push(self.revoke_decode_victim(admit.id, admit.context, ctx));
            }
        }
        victims
    }

    fn on_gpu_recovered(&mut self, gpu: u32, ctx: &mut ServeCtx) {
        let half = ctx.gpu.num_gpus() / 2;
        if gpu < half {
            if let Some(g) = self.p_group {
                if ctx.gpu.group_has_dead_gpu(g) {
                    return;
                }
            }
            self.p_down = false;
            self.try_start_prefill(ctx);
        } else {
            if let Some(g) = self.d_group {
                if ctx.gpu.group_has_dead_gpu(g) {
                    return;
                }
            }
            self.d_down = false;
            self.try_admit_decode(ctx);
            self.launch_decode(ctx);
            self.try_start_prefill(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GpuSim;
    use serving::Driver;
    use simcore::SimRng;
    use workload::{generate, WorkloadKind};

    fn run(kind: WorkloadKind, n: usize, rate: f64) -> (serving::Report, SglangPd) {
        let cluster = ClusterSpec::dgx_a100();
        let model = ModelSpec::llama8b();
        let slo = SloSpec::llama8b();
        let mut engine = SglangPd::new(&model, &cluster, slo);
        let mut rng = SimRng::seed_from(21);
        let reqs = generate(kind, n, rate, &mut rng);
        let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
        (rep, engine)
    }

    #[test]
    fn completes_sharegpt_with_transfers() {
        let (rep, _) = run(WorkloadKind::ShareGpt, 80, 4.0);
        assert_eq!(rep.finished, rep.total);
        // Decode is isolated on its instance: TBT comfortably under SLO.
        assert!(rep.tbt.p99() < 0.050, "p99 TBT {}", rep.tbt.p99());
    }

    #[test]
    fn multi_turn_hit_rate_suffers_vs_shared_pool() {
        let (rep, engine) = run(WorkloadKind::Conversation, 50, 1.0);
        assert_eq!(rep.finished, rep.total);
        let stats = engine.prefill_pool_stats().expect("pool");
        // Outputs never reach the prefill pool, so reuse is partial at
        // best (the aggregated-pool systems cache input+output).
        assert!(stats.hit_rate() < 0.95);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_models_too_large_for_half_cluster() {
        SglangPd::new(
            &ModelSpec::qwen235b(),
            &ClusterSpec::dgx_a100(),
            SloSpec::llama70b(),
        );
    }
}
