#![warn(missing_docs)]
//! Baseline serving systems the paper compares MuxWise against (§4.1),
//! reimplemented as [`serving::Scheduler`]s on the same GPU simulator:
//!
//! * [`ChunkedPrefill`] — SGLang with SARATHI-Serve chunked prefill: each
//!   iteration fuses the ongoing decode batch with a prefill chunk capped
//!   by an offline-tuned token budget. Shares one KV pool (full reuse),
//!   but couples decode SLO to the budget — the dilemma of §2.3.2.
//! * [`ChunkedPrefill::nanoflow`] — NanoFlow: chunked-prefill with
//!   operator-level nano-batch overlap. Gains compute overlap but
//!   duplicates weight loading per iteration, which backfires when the
//!   fused batch is memory-bound (§4.2.1).
//! * [`SglangPd`] — static 1:1 prefill/decode disaggregation (Splitwise
//!   lineage, SGLang-PD implementation): two 4-GPU TP-4 instances with
//!   separate (halved) KV pools and NVLink KV migration.
//! * [`LoongServe`] — dynamic disaggregation with elastic sequence
//!   parallelism: prefill scales across free GPUs, KV migrates to the
//!   decode group, and **no cross-request KV reuse** (multi-turn context
//!   is recomputed every turn, §2.3.1).
//! * [`HybridPd`] — §5's large-scale deployment idea: static
//!   disaggregation whose decode instance absorbs overflow prefill on its
//!   idle SMs via spatial multiplexing (MuxWise as a building block
//!   inside disaggregated fleets).
//! * [`related::WindServe`] — §6: spatial multiplexing on plain CUDA
//!   streams: a fixed half/half SM split, no estimator, whole-phase
//!   prefill launches.
//! * [`related::TemporalMux`] — §6: the temporal-only variant (layer-wise
//!   prefill squeezed between decode iterations, never concurrent).
//!
//! # Adding a new engine
//!
//! An engine is a [`serving::Scheduler`] that owns *policy only*; the
//! request-lifecycle mechanics live in the `serving` substrate. Hold KV
//! through a [`serving::LeaseTable`] (created in `on_start`, reported via
//! `Scheduler::lease_tables` so the driver's end-of-run leak detector
//! covers you): admit with `lease_prefix`/`try_lease_private`, grow with
//! `absorb_private`, and finish through `release` or `release_and_commit`
//! — never touch the raw pool lock API. Track stages with a
//! [`serving::Lifecycle`] (`admit`/`begin_decode`/`requeue`/`finish`/
//! `drop_request`; illegal orders panic) and return its counters from
//! `Scheduler::counters` so requeue/drop pressure lands in every
//! [`serving::Report`]. Keep decoding requests in a
//! [`serving::DecodeBatch`]: `grow_for_iteration` handles the
//! one-token-per-slot KV growth with tail-victim eviction and
//! `advance_iteration` handles emission and retirement, so a new
//! scheduler is ~the admission policy, the kernel-submission logic, and
//! nothing else. [`SglangPd`] is the smallest complete template.
//!
//! # Examples
//!
//! ```no_run
//! use baselines::ChunkedPrefill;
//! use gpusim::{ClusterSpec, GpuSim};
//! use modelspec::ModelSpec;
//! use serving::{Driver, SloSpec};
//! use simcore::SimRng;
//! use workload::{generate, WorkloadKind};
//!
//! let cluster = ClusterSpec::dgx_a100();
//! let model = ModelSpec::llama8b();
//! let slo = SloSpec::llama8b();
//! let mut engine = ChunkedPrefill::tuned(&model, &cluster, 8, slo);
//! let mut rng = SimRng::seed_from(1);
//! let reqs = generate(WorkloadKind::ShareGpt, 100, 2.0, &mut rng);
//! let rep = Driver::new(GpuSim::from_cluster(&cluster), reqs, slo).run(&mut engine);
//! println!("{}/{} finished", rep.finished, rep.total);
//! ```

pub mod chunked;
pub mod hybrid;
pub mod loongserve;
pub mod pd;
pub mod related;

pub use chunked::ChunkedPrefill;
pub use hybrid::HybridPd;
pub use loongserve::LoongServe;
pub use pd::SglangPd;
pub use related::{TemporalMux, WindServe};
