//! R5 fixture, compliant: sort before reducing, or annotate both the
//! order and float findings away with one audited comment.

use std::collections::HashMap;

fn mean_latency(cells: &HashMap<u64, f64>) -> f64 {
    let mut values: Vec<f64> = Vec::new();
    // simlint: allow(R1) reason="collected to a Vec and sorted before any float math below"
    for (_, v) in cells.iter() {
        values.push(*v);
    }
    values.sort_by(f64::total_cmp);
    values.iter().sum::<f64>() / values.len() as f64
}

fn joint_probability(cells: &HashMap<u64, f64>) -> f64 {
    // simlint: allow(R1, R5) reason="diagnostic estimate printed to stderr; never compared against goldens"
    cells.values().fold(1.0, |acc, p| acc * p)
}

fn cell_count(cells: &HashMap<u64, f64>) -> usize {
    // Integer consumers need no annotation at all.
    cells.len()
}
