//! R5 fixture: float reductions fed by hash-order iterators. Float
//! addition is not associative, so these results differ run to run.
//! (Each statement also trips R1: same root cause, two invariants.)
//! This file is lint input only; it is never compiled.

use std::collections::HashMap;

fn mean_latency(cells: &HashMap<u64, f64>) -> f64 {
    cells.values().sum::<f64>() / cells.len() as f64
}

fn joint_probability(cells: &HashMap<u64, f64>) -> f64 {
    cells.values().fold(1.0, |acc, p| acc * p)
}
