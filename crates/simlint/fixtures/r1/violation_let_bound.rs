//! R1 positive, alias form: the HashMap escapes through a `let`
//! binding before iteration, so the iterating statement itself carries
//! no `HashMap` token — only the alias chain knows the loop runs in
//! hash order. Lint input only; never compiled.

use std::collections::HashMap;

pub struct FrontierV1 {
    pending: HashMap<u64, u32>,
}

impl FrontierV1 {
    pub fn sweep_v1(&self) -> u64 {
        let snapshot = &self.pending;
        let mut acc = 0u64;
        for (_req, age) in snapshot {
            acc += u64::from(*age);
        }
        acc
    }
}
