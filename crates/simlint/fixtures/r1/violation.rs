//! R1 fixture: hash-order iteration leaking into replay-visible state.
//! This file is lint input only; it is never compiled.

use std::collections::{HashMap, HashSet};

struct Engine {
    transferring: HashMap<u64, u32>,
    crash_protected: HashSet<u64>,
}

impl Engine {
    /// The exact bug class PR 4 fixed by hand: drain order becomes
    /// requeue-event order, so a hash-order drain diverges across runs.
    fn crash_drain(&mut self) -> Vec<u32> {
        let mut victims = Vec::new();
        for (_, admit) in self.transferring.drain() {
            victims.push(admit);
        }
        victims
    }

    /// Borrowed loop form of the same hazard.
    fn requeue_all(&mut self, out: &mut Vec<u64>) {
        for id in &self.crash_protected {
            out.push(*id);
        }
    }
}
