//! R1 alias form, suppressed: same shape as `violation_let_bound.rs`
//! but the fold is order-insensitive and carries an audited
//! annotation. Lint input only; never compiled.

use std::collections::HashMap;

pub struct FrontierS1 {
    pending: HashMap<u64, u32>,
}

impl FrontierS1 {
    pub fn sweep_s1(&self) -> u64 {
        let snapshot = &self.pending;
        let mut acc = 0u64;
        // simlint: allow(R1) reason="integer sum; addition order cannot change the result"
        for (_req, age) in snapshot {
            acc += u64::from(*age);
        }
        acc
    }
}
