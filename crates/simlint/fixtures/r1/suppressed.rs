//! R1 fixture, compliant: either the statement restores an order, or
//! the exception is annotated with a reviewable reason.

use std::collections::{BTreeMap, HashMap};

struct Engine {
    transferring: HashMap<u64, u32>,
    total: u64,
}

impl Engine {
    /// Collecting into an ordered container in the same statement
    /// chain satisfies the rule without any annotation.
    fn ordered_drain(&mut self) -> BTreeMap<u64, u32> {
        self.transferring.drain().collect::<BTreeMap<u64, u32>>()
    }

    /// Order-insensitive consumers (`count`, `len`, `any`, …) are
    /// recognized too.
    fn inflight(&self) -> usize {
        self.transferring.keys().count()
    }

    /// A genuine exception carries an audited reason.
    fn fold_counters(&mut self) {
        // simlint: allow(R1) reason="integer += fold; visit order is unobservable in the result"
        for (_, admit) in self.transferring.drain() {
            self.total += u64::from(admit);
        }
    }
}
