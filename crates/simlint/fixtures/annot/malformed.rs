//! Annotation-grammar fixture: every way an `allow` can be written
//! wrong is itself a finding, so a typo can never silently disable a
//! rule. This file is lint input only; it is never compiled.

// simlint: allow(R1)
fn missing_reason() {}

// simlint: allow(R1) reason="   "
fn blank_reason() {}

// simlint: allow(R12) reason="no such rule"
fn unknown_rule() {}

// simlint: allow(R1) reason="trailing junk" and then some
fn trailing_garbage() {}

// simlint: allow(annot) reason="the annotation rule itself is not suppressible"
fn not_allowable() {}

// simlint: hot path
fn hot_with_trailing_text() {}

// simlint: hot
const NOT_A_FN: u32 = 0;
