//! R4 fixture, compliant (name ends in `recovery.rs`): restructured
//! panic-free code, an audited exception, and test-gated unwraps.

fn pop_event(queue: &mut Vec<u64>) -> Option<u64> {
    // The restructured form the rule pushes toward: no panic path.
    queue.pop()
}

fn victim_label(label: Option<&str>) -> &str {
    // simlint: allow(R4) reason="fixture: invariant established by the caller one line above; a None here is a bug worth stopping on"
    label.expect("victim must be labelled")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
