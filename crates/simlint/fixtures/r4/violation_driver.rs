//! R4 fixture (name ends in `driver.rs`, so the panic-hygiene scope
//! applies): unwrap/expect on the serving hot path.
//! This file is lint input only; it is never compiled.

fn pop_event(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap()
}

fn victim_label(label: Option<&str>) -> &str {
    label.expect("victim must be labelled")
}
