//! R7 suppressed: same taint path as `violation.rs`, but the
//! entrypoint carries an audited `allow(R7)` (the mux is explicitly a
//! reporting-only baseline, never replayed). Lint input only; never
//! compiled.

pub struct AuditedMux {
    jitter_us: u64,
}

impl Scheduler for AuditedMux {
    // simlint: allow(R7) reason="audited: reporting-only baseline, excluded from replay suite"
    fn admit_s7(&mut self, now_us: u64) -> u64 {
        now_us + wall_probe_s7()
    }
}

fn wall_probe_s7() -> u64 {
    let t = std::time::Instant::now(); // simlint: allow(R2) reason="audited: reporting-only timing"
    t.elapsed().as_micros() as u64
}
