//! R7 positive: the scheduler entrypoint never touches the clock
//! itself — it reaches `Instant` through two hops of helpers, and the
//! source even carries an audited `allow(R2)`. Per-file rules are
//! silent; only the interprocedural taint walk sees the path. Lint
//! input only; never compiled.

pub struct VolatileMux {
    jitter_us: u64,
}

impl Scheduler for VolatileMux {
    fn admit_v7(&mut self, now_us: u64) -> u64 {
        now_us + jitter_probe_v7()
    }
}

fn jitter_probe_v7() -> u64 {
    inner_probe_v7()
}

fn inner_probe_v7() -> u64 {
    let t = std::time::Instant::now(); // simlint: allow(R2) reason="audited: reporting-only timing"
    t.elapsed().as_micros() as u64
}
