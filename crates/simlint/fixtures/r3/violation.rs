//! R3 fixture: raw KvPool traffic outside the lease table.
//! This file is lint input only; it is never compiled.

use kvcache::KvPool;

struct Engine {
    pool: KvPool,
}

impl Engine {
    /// Constructing a pool directly hides it from the driver's
    /// end-of-run leak detector.
    fn fresh() -> Engine {
        Engine {
            pool: KvPool::new(1 << 20, 64),
        }
    }

    /// The PR 2 lease substrate exists so this unpaired free cannot
    /// happen; calling the pool directly reintroduces the leak class.
    fn sneak_free(&mut self) {
        self.pool.free_private(64);
    }
}
