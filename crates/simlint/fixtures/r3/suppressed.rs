//! R3 fixture, compliant: test-gated pool poking is exempt, and a
//! non-test exception carries an audited reason.

use kvcache::KvPool;

struct Probe {
    pool: KvPool,
}

impl Probe {
    fn occupancy(&mut self) -> u64 {
        // simlint: allow(R3) reason="fixture: telemetry probe owns a throwaway pool; nothing leases from it"
        self.pool.try_alloc_private(1, now());
        self.pool.used_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_tests_may_poke_pools_directly() {
        let mut p = KvPool::new(1024, 64);
        assert!(p.try_alloc_private(64, now()));
        p.free_private(64);
    }
}
