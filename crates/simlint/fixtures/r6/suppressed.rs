//! R6 negative case: the same hot shape written allocation-free with
//! caller-owned scratch, plus one audited suppression on a cold branch.

pub struct Batch {
    slots: Vec<u64>,
    spare: Vec<u64>,
}

impl Batch {
    // simlint: hot
    pub fn advance_into(&mut self, retired: &mut Vec<u64>) {
        retired.clear();
        let mut survivors = std::mem::take(&mut self.spare);
        survivors.clear();
        for s in self.slots.drain(..) {
            if s == 0 {
                retired.push(s);
            } else {
                survivors.push(s);
            }
        }
        std::mem::swap(&mut self.slots, &mut survivors);
        self.spare = survivors;
        if retired.len() > 1_000_000 {
            // simlint: allow(R6) reason="unreachable overflow guard; keeps a debug snapshot"
            let _debug = retired.clone();
        }
    }
}
