//! R6 positive case: per-event heap traffic inside a `simlint: hot`
//! function. Modeled on the pre-refactor decode advance path, which
//! collected contexts and cloned slot vectors every iteration.

pub struct Batch {
    slots: Vec<u64>,
    spare: Vec<u64>,
}

impl Batch {
    // simlint: hot
    pub fn advance(&mut self) -> Vec<u64> {
        let ctxs: Vec<u64> = self.slots.iter().copied().collect();
        let snapshot = self.slots.clone();
        let mut out = Vec::new();
        out.extend(snapshot.to_vec());
        let pad = vec![0u64; ctxs.len()];
        out.extend(pad);
        out
    }

    pub fn cold_reset(&mut self) {
        // Not marked hot: allocation here is fine.
        self.spare = Vec::new();
        self.slots = self.spare.clone();
    }
}
