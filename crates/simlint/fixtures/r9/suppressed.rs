//! R9 suppressed: every shared-state site carries an audited
//! `allow(R9)` — the canonical shape for debug-only instrumentation
//! that reviewers have confirmed never feeds replay state. Lint input
//! only; never compiled.

// simlint: allow(R9) reason="audited: debug trace cell, never read by engine code"
use std::cell::RefCell;

pub struct TraceS9 {
    // simlint: allow(R9) reason="audited: debug trace cell, never read by engine code"
    scratch: RefCell<u64>,
}

// simlint: allow(R9) reason="audited: crash-dump breadcrumb, written once on panic"
static mut CRUMB_S9: u64 = 0;
