//! R9 positive: shared mutable state smuggled into a replay-critical
//! crate — a lock, an atomic, and a `static mut`. Fleet members run on
//! scoped threads *because* they share nothing; any of these turns
//! thread scheduling into replay input. Lint input only; never
//! compiled.

use std::sync::Mutex;

pub struct TallyV9 {
    lock: Mutex<u64>,
    hits: std::sync::atomic::AtomicUsize,
}

static mut LAST_V9: u64 = 0;
