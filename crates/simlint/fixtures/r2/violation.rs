//! R2 fixture: wall-clock and ambient entropy inside simulation code.
//! This file is lint input only; it is never compiled.

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn race_the_clock() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

fn roll() -> u64 {
    rand::random()
}
