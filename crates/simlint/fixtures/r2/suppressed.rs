//! R2 fixture, compliant: reporting-only wall-clock with audited
//! reasons (the sweep_smoke pattern).

// simlint: allow(R2) reason="wall-clock timing of the bench harness; reporting-only"
use std::time::Instant;

fn time_the_harness(run: impl FnOnce()) -> f64 {
    // simlint: allow(R2) reason="wall-clock timing of the bench harness; reporting-only"
    let t0 = Instant::now();
    run();
    t0.elapsed().as_secs_f64()
}
