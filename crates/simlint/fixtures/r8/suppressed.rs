//! R8 clean: the same signal reads, but inside barrier scope. The
//! `// simlint: barrier` marker seeds the set; `fold_signals_s8` joins
//! through the call-graph closure (its only caller is barrier-scoped);
//! the one genuinely mid-step read carries an audited `allow(R8)`.
//! Lint input only; never compiled.

struct Scope8 {
    gray: bool,
}

impl Scope8 {
    fn in_gray_fault(&self) -> bool {
        self.gray
    }
}

// simlint: barrier
fn barrier_poll_s8(s: &Scope8) -> bool {
    fold_signals_s8(s)
}

fn fold_signals_s8(s: &Scope8) -> bool {
    s.in_gray_fault()
}

fn drain_probe_s8(s: &Scope8) -> bool {
    s.in_gray_fault() // simlint: allow(R8) reason="audited: read feeds a log line, never a decision"
}
