//! R8 positive: a fleet health signal sampled mid-step, outside any
//! barrier-scoped function, plus an `Observation` built ad hoc. The
//! accessor that *defines* the signal is exempt (it is the signal);
//! the caller that samples it is not. Lint input only; never compiled.

pub struct Observation {
    pub dead_gpus: usize,
}

struct Probe8 {
    gray: bool,
}

impl Probe8 {
    fn in_gray_fault(&self) -> bool {
        self.gray
    }
}

fn midstep_poll_v8(p: &Probe8) -> bool {
    p.in_gray_fault()
}

fn synthesize_v8() -> Observation {
    Observation { dead_gpus: 0 }
}
