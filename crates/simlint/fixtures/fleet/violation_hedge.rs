//! R4 fixture (name ends in `hedge.rs`, so the fleet fault-tolerance
//! panic scope applies): unwrap on the pair-resolution path. This file
//! is lint input only; it is never compiled.

fn loser_of(pair: &[(usize, u64)], winner: usize) -> (usize, u64) {
    *pair.iter().find(|&&(m, _)| m != winner).unwrap()
}
