//! R4 fixture (name ends in `replicate.rs`, so the fleet
//! fault-tolerance panic scope applies): unwrap on the sweep path.
//! This file is lint input only; it is never compiled.

fn hottest_session(heat: &[(u64, u64)]) -> u64 {
    heat.iter().max_by_key(|&&(_, hits)| hits).unwrap().0
}
