//! R4 fixture (name ends in `failover.rs`, so the fleet fault-tolerance
//! panic scope applies): expect on the migration placement path.
//! This file is lint input only; it is never compiled.

fn placement_target(placements: &[(usize, u64)], victim: u64) -> usize {
    placements
        .iter()
        .find(|&&(_, id)| id == victim)
        .expect("placed victim must be tracked")
        .0
}
