//! R4 fixture, compliant (name ends in `failover.rs`): an untracked
//! victim is an accounting anomaly, not a reason to take the fleet
//! down — the lookup stays fallible and the caller skips it.

fn placement_target(placements: &[(usize, u64)], victim: u64) -> Option<usize> {
    placements.iter().find(|&&(_, id)| id == victim).map(|p| p.0)
}

fn first_due(queue: &[u64]) -> u64 {
    // simlint: allow(R4) reason="fixture: the engine only calls this after a non-empty check one line above; an empty queue here is a bug worth stopping on"
    queue.first().copied().expect("non-empty migration queue")
}
