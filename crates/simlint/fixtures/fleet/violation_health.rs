//! R4 fixture (name ends in `health.rs`, so the fleet fault-tolerance
//! panic scope applies): unwrap on the breaker transition path.
//! This file is lint input only; it is never compiled.

fn eject_deadline(bad_since: Option<u64>, eject_after: u64) -> u64 {
    bad_since.unwrap() + eject_after
}
