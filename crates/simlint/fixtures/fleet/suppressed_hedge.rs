//! R4 fixture, compliant (name ends in `hedge.rs`): a pair with no
//! distinct loser is a book-keeping anomaly, not a reason to take the
//! fleet down — the resolution path returns `None` and the caller
//! counts it.

fn loser_of(pair: &[(usize, u64)], winner: usize) -> Option<(usize, u64)> {
    pair.iter().find(|&&(m, _)| m != winner).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        assert_eq!(super::loser_of(&[(0, 7), (1, 9)], 0).unwrap(), (1, 9));
    }
}
