//! R4 fixture, compliant (name ends in `health.rs`): the breaker keeps
//! a panic-free fallback — a missing bad-window start falls back to
//! `now` instead of unwrapping.

fn eject_deadline(bad_since: Option<u64>, now: u64, eject_after: u64) -> u64 {
    // The restructured form: `unwrap_or` has no panic path.
    bad_since.unwrap_or(now) + eject_after
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let t: Option<u64> = Some(7);
        assert_eq!(t.unwrap(), 7);
    }
}
