//! R4 fixture, compliant (name ends in `replicate.rs`): an empty heat
//! table simply means nothing to replicate — the sweep returns early
//! instead of unwrapping.

fn hottest_session(heat: &[(u64, u64)]) -> Option<u64> {
    heat.iter().max_by_key(|&&(_, hits)| hits).map(|h| h.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        assert_eq!(super::hottest_session(&[(4, 2)]).unwrap(), 4);
    }
}
