//! The acceptance gate, enforced from the test suite as well as from
//! `scripts/check.sh`: the workspace itself must lint clean — every
//! remaining suppression carries a written reason (reasonless ones are
//! `annot` findings and fail this test too).

use std::path::Path;

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let findings = simlint::lint_workspace(&root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "simlint findings on the tree (fix or annotate with a reason):\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
