//! Property test: the symbol-index scanner round-trips arbitrary "item
//! soups" — random sequences of free fns, inherent and trait impls,
//! trait declarations with and without default bodies, structs, and
//! decoy items (strings and comments containing `fn`). Rendering a
//! soup to source and scanning it must recover exactly the functions
//! the soup declares, in order, with the right `self_ty`/`trait_name`
//! attribution and sane body spans — and the scanner must stay total
//! on arbitrarily truncated source.

use proptest::prelude::*;
use simlint::lexer::{lex, TokKind};
use simlint::symbols::SymbolIndex;

const NAMES: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "probe", "fold", "sweep", "merge",
];
const TYPES: &[&str] = &["Widget", "Router", "Table", "Gauge", "Mux"];

/// One item of the soup, with everything needed to render it and to
/// predict what the scanner should index.
#[derive(Debug, Clone)]
enum Item {
    /// `fn name<T: Clone>(x: T) -> u64 where T: Sized { … }`
    FreeFn { name: usize, generics: bool },
    /// `impl Ty { fn m(&self) { … } … }` or `impl Tr for Ty { … }`
    ImplBlock {
        ty: usize,
        trait_of: Option<usize>,
        methods: Vec<usize>,
    },
    /// `trait Tr { fn a(&self); fn b(&self) { … } }` — only the
    /// defaulted method is indexed.
    TraitBlock {
        tr: usize,
        methods: Vec<(usize, bool)>,
    },
    /// `struct Ty { f: u64 }` — braces, no fns.
    Struct { ty: usize },
    /// A decoy: `fn`-lookalikes hidden in strings and comments.
    Decoy,
}

fn item_strategy() -> impl Strategy<Value = Item> {
    let name = 0usize..NAMES.len();
    let ty = 0usize..TYPES.len();
    prop_oneof![
        (name.clone(), any::<bool>()).prop_map(|(name, generics)| Item::FreeFn { name, generics }),
        (
            ty.clone(),
            (any::<bool>(), 0usize..TYPES.len()),
            proptest::collection::vec(0usize..NAMES.len(), 1..4)
        )
            .prop_map(|(ty, (is_trait, tr), methods)| Item::ImplBlock {
                ty,
                trait_of: is_trait.then_some(tr),
                methods
            }),
        (
            ty.clone(),
            proptest::collection::vec((0usize..NAMES.len(), any::<bool>()), 1..4)
        )
            .prop_map(|(tr, methods)| Item::TraitBlock { tr, methods }),
        ty.prop_map(|ty| Item::Struct { ty }),
        Just(Item::Decoy),
    ]
}

/// What the scanner must report for one fn.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Expected {
    name: String,
    self_ty: Option<String>,
    trait_name: Option<String>,
    line: u32,
}

/// Renders the soup to source, returning the text plus the expected
/// index contents in declaration order. `seq` uniquifies fn names so
/// two soups items never collide (collisions are legal, but unique
/// names make the positional comparison unambiguous).
fn render(items: &[Item]) -> (String, Vec<Expected>) {
    let mut src = String::new();
    let mut line = 1u32;
    let mut expected = Vec::new();
    let mut seq = 0usize;
    let push = |src: &mut String, line: &mut u32, s: &str| {
        src.push_str(s);
        src.push('\n');
        *line += 1;
    };
    for item in items {
        match item {
            Item::FreeFn { name, generics } => {
                seq += 1;
                let n = format!("{}{}", NAMES[*name], seq);
                let sig = if *generics {
                    format!("fn {n}<T: Clone>(x: T) -> Vec<u64> where T: Sized {{")
                } else {
                    format!("fn {n}(x: u64) -> u64 {{")
                };
                expected.push(Expected {
                    name: n,
                    self_ty: None,
                    trait_name: None,
                    line,
                });
                push(&mut src, &mut line, &sig);
                push(
                    &mut src,
                    &mut line,
                    "    let y = if x > 0 { 1 } else { 2 };",
                );
                push(&mut src, &mut line, "    y");
                push(&mut src, &mut line, "}");
            }
            Item::ImplBlock {
                ty,
                trait_of,
                methods,
            } => {
                let t = TYPES[*ty];
                let (header, trait_name) = match trait_of {
                    Some(tr) => (format!("impl {} for {t} {{", TYPES[*tr]), Some(TYPES[*tr])),
                    None => (format!("impl {t} {{"), None),
                };
                push(&mut src, &mut line, &header);
                for m in methods {
                    seq += 1;
                    let n = format!("{}{}", NAMES[*m], seq);
                    expected.push(Expected {
                        name: n.clone(),
                        self_ty: Some(t.to_string()),
                        trait_name: trait_name.map(str::to_string),
                        line,
                    });
                    push(&mut src, &mut line, &format!("    fn {n}(&self) -> u64 {{"));
                    push(&mut src, &mut line, "        0");
                    push(&mut src, &mut line, "    }");
                }
                push(&mut src, &mut line, "}");
            }
            Item::TraitBlock { tr, methods } => {
                let t = TYPES[*tr];
                push(&mut src, &mut line, &format!("trait {t} {{"));
                for (m, defaulted) in methods {
                    seq += 1;
                    let n = format!("{}{}", NAMES[*m], seq);
                    if *defaulted {
                        expected.push(Expected {
                            name: n.clone(),
                            self_ty: Some(t.to_string()),
                            trait_name: Some(t.to_string()),
                            line,
                        });
                        push(&mut src, &mut line, &format!("    fn {n}(&self) -> u64 {{"));
                        push(&mut src, &mut line, "        1");
                        push(&mut src, &mut line, "    }");
                    } else {
                        // Bodyless: declared, never indexed.
                        push(&mut src, &mut line, &format!("    fn {n}(&self) -> u64;"));
                    }
                }
                push(&mut src, &mut line, "}");
            }
            Item::Struct { ty } => {
                push(&mut src, &mut line, &format!("struct {}S {{", TYPES[*ty]));
                push(&mut src, &mut line, "    field: u64,");
                push(&mut src, &mut line, "}");
            }
            Item::Decoy => {
                push(&mut src, &mut line, "// fn commented_out() { nope }");
                push(
                    &mut src,
                    &mut line,
                    "const DECOY: &str = \"fn in_a_string() { also nope }\";",
                );
            }
        }
    }
    (src, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// render → scan recovers exactly the declared fns, in order.
    #[test]
    fn scan_roundtrips_item_soups(items in proptest::collection::vec(item_strategy(), 0..12)) {
        let (src, expected) = render(&items);
        let lexed = lex(&src);
        let mut idx = SymbolIndex::default();
        idx.scan_unit(0, &lexed.tokens, &[]);
        let got: Vec<Expected> = idx
            .fns
            .iter()
            .map(|f| Expected {
                name: f.name.clone(),
                self_ty: f.self_ty.clone(),
                trait_name: f.trait_name.clone(),
                line: f.line,
            })
            .collect();
        prop_assert_eq!(&got, &expected, "source:\n{}", src);
        // Body spans are sane: open brace token, strictly ordered, and
        // the recorded body never leaks past the token stream.
        for f in &idx.fns {
            prop_assert!(f.body.0 < f.body.1, "body span inverted: {f:?}");
            prop_assert!(f.body.1 <= lexed.tokens.len(), "body escapes stream: {f:?}");
            prop_assert_eq!(&lexed.tokens[f.body.0].kind, &TokKind::Punct('{'));
        }
        prop_assert!(!idx.fns.iter().any(|f| f.in_test), "no test spans were given");
    }

    /// The scanner is total on truncated/mangled source: any prefix of
    /// a valid soup (cut at a char boundary) scans without panicking,
    /// and every fn it does index keeps a sane span.
    #[test]
    fn scan_is_total_on_truncated_soups(
        items in proptest::collection::vec(item_strategy(), 1..8),
        cut in any::<usize>(),
    ) {
        let (src, _) = render(&items);
        let mut at = cut % (src.len() + 1);
        while at > 0 && !src.is_char_boundary(at) {
            at -= 1;
        }
        let truncated = &src[..at];
        let lexed = lex(truncated);
        let mut idx = SymbolIndex::default();
        idx.scan_unit(0, &lexed.tokens, &[]);
        for f in &idx.fns {
            prop_assert!(f.body.0 < f.body.1.max(f.body.0 + 1) + 1);
            prop_assert!(f.body.1 <= lexed.tokens.len());
        }
    }
}
