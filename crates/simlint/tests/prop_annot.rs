//! Property test: the annotation parser round-trips every canonical
//! `allow(<rules>) reason="…"` string, with arbitrary rule lists,
//! reasons, and comment-level whitespace.

use proptest::prelude::*;
use simlint::annot::{parse_comment, Annotation};
use simlint::Rule;

/// Reason alphabet: everything a human writes in justifications except
/// the `"` that would close the string early.
const REASON_CHARS: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'k', 'l', 'm', 'n', 'o', 'p', 'r', 's', 't', 'u',
    'w', 'y', 'A', 'B', 'K', 'R', 'V', '0', '1', '2', '9', ' ', '-', '_', '.', ',', ';', ':', '(',
    ')', '=', '+', '/', '·', '…',
];

fn reason_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..REASON_CHARS.len(), 1..60).prop_map(|idxs| {
        let raw: String = idxs.into_iter().map(|i| REASON_CHARS[i]).collect();
        // The parser trims the reason; canonical form is pre-trimmed
        // and non-empty.
        let trimmed = raw.trim().to_string();
        if trimmed.is_empty() {
            "x".to_string()
        } else {
            trimmed
        }
    })
}

fn rules_strategy() -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(0usize..Rule::ALL.len(), 1..5)
        .prop_map(|idxs| idxs.into_iter().map(|i| Rule::ALL[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// format → parse is the identity on canonical annotations.
    #[test]
    fn format_parse_roundtrip(
        rules in rules_strategy(),
        reason in reason_strategy(),
    ) {
        let a = Annotation { rules, reason };
        let rendered = a.format();
        let parsed = parse_comment(&rendered);
        prop_assert_eq!(parsed, Some(Ok(a)), "rendered: {}", rendered);
    }

    /// Leading whitespace and doc-comment-style padding around the
    /// rendered form parse to the same annotation.
    #[test]
    fn parse_is_whitespace_insensitive_at_the_edges(
        rules in rules_strategy(),
        reason in reason_strategy(),
        pad in 0usize..4,
    ) {
        let a = Annotation { rules, reason };
        let rendered = format!("{}{}", " ".repeat(pad), a.format());
        prop_assert_eq!(parse_comment(&rendered), Some(Ok(a)));
    }

    /// Chopping the tail off a canonical annotation never yields a
    /// *silently ignored* comment: it either still parses (a shorter
    /// prefix that happens to be valid cannot occur here, so this arm
    /// is vacuous) or is reported as a broken annotation.
    #[test]
    fn truncations_are_loud(
        rules in rules_strategy(),
        reason in reason_strategy(),
        cut in 1usize..20,
    ) {
        let a = Annotation { rules, reason };
        let rendered = a.format();
        let chars: Vec<char> = rendered.chars().collect();
        if cut < chars.len() {
            let truncated: String = chars[..chars.len() - cut].iter().collect();
            match parse_comment(&truncated) {
                None => prop_assert!(
                    !truncated.trim_start().starts_with("simlint:"),
                    "simlint-prefixed comment vanished: {truncated:?}"
                ),
                Some(Err(_)) => {} // loud: becomes an `annot` finding
                Some(Ok(parsed)) => {
                    // Only possible if truncation landed exactly after
                    // the closing quote… which removes nothing
                    // semantic. Then it must equal the original.
                    prop_assert_eq!(parsed, a.clone());
                }
            }
        }
    }
}
