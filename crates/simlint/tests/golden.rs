//! Self-test against the fixture corpus: the full findings list must
//! match `fixtures/expected.txt` byte for byte, every `violation`
//! fixture must fail the binary with a non-zero exit, and every
//! `suppressed` fixture must pass it cleanly.

use simlint::{collect_rs_files, lint_source};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn lint_fixture(path: &Path) -> Vec<simlint::Finding> {
    let rel = path
        .strip_prefix(fixtures_dir())
        .expect("fixture path")
        .to_string_lossy()
        .replace('\\', "/");
    let src = std::fs::read_to_string(path).expect("readable fixture");
    lint_source(&rel, &src)
}

#[test]
fn fixture_findings_match_golden() {
    let files = collect_rs_files(&fixtures_dir());
    assert!(files.len() >= 19, "fixture corpus went missing: {files:?}");
    let mut got = String::new();
    for f in &files {
        for finding in lint_fixture(f) {
            got.push_str(&finding.to_string());
            got.push('\n');
        }
    }
    let expected =
        std::fs::read_to_string(fixtures_dir().join("expected.txt")).expect("golden file");
    assert_eq!(
        got, expected,
        "fixture findings drifted from fixtures/expected.txt; if the rule \
         engine changed intentionally, regenerate the golden with \
         `cd crates/simlint/fixtures && cargo run -q -p simlint -- annot fleet r1 r2 r3 r4 r5 r6 > expected.txt`"
    );
}

#[test]
fn every_violation_fixture_fires_and_every_suppressed_fixture_is_clean() {
    let mut violations = 0;
    let mut suppressed = 0;
    for f in collect_rs_files(&fixtures_dir()) {
        let name = f.file_stem().unwrap().to_string_lossy().into_owned();
        let findings = lint_fixture(&f);
        if name.starts_with("violation") || name.starts_with("malformed") {
            violations += 1;
            assert!(!findings.is_empty(), "{} found nothing", f.display());
        } else if name.starts_with("suppressed") {
            suppressed += 1;
            assert!(
                findings.is_empty(),
                "{} should be clean, got: {findings:?}",
                f.display()
            );
        } else {
            panic!("unclassified fixture {}", f.display());
        }
    }
    // One positive and one suppressed case per rule (four R4 pairs for
    // the fleet fault-tolerance files), plus the annotation-grammar
    // corpus.
    assert_eq!((violations, suppressed), (11, 10));
}

#[test]
fn binary_exits_nonzero_per_violation_and_zero_on_suppressed() {
    let bin = env!("CARGO_BIN_EXE_simlint");
    for f in collect_rs_files(&fixtures_dir()) {
        let name = f.file_stem().unwrap().to_string_lossy().into_owned();
        // Paths are passed relative to the fixtures dir: an absolute
        // path would carry a `crates/simlint/` segment and the crate
        // classifier would read the fixture as simlint's own
        // (non-replay-critical) code.
        let rel = f.strip_prefix(fixtures_dir()).expect("fixture path");
        let out = Command::new(bin)
            .arg(rel)
            .current_dir(fixtures_dir())
            .output()
            .expect("simlint binary runs");
        let code = out.status.code();
        if name.starts_with("suppressed") {
            assert_eq!(code, Some(0), "{}: {out:?}", f.display());
        } else {
            assert_eq!(code, Some(1), "{}: {out:?}", f.display());
        }
    }
}
