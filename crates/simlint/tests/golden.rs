//! Self-test against the fixture corpus: the full findings list must
//! match `fixtures/expected.txt` byte for byte (and its JSON rendering
//! `fixtures/expected.json`), every `violation` fixture must fail the
//! binary with a non-zero exit, and every `suppressed` fixture must
//! pass it cleanly.
//!
//! The golden lints the whole fixture tree as ONE workspace — the same
//! semantics the binary applies to multiple paths — so interprocedural
//! rules (R7/R8) see their full call graphs. Fixture fn names carry
//! per-fixture suffixes (`_v7`, `_s8`, …) precisely so the shared
//! call graph gains no accidental cross-fixture edges.

use simlint::{collect_rs_files, lint_files, lint_source, render_json, FileUnit};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture_units() -> Vec<FileUnit> {
    collect_rs_files(&fixtures_dir())
        .iter()
        .map(|f| FileUnit {
            rel_path: f
                .strip_prefix(fixtures_dir())
                .expect("fixture path")
                .to_string_lossy()
                .replace('\\', "/"),
            src: std::fs::read_to_string(f).expect("readable fixture"),
        })
        .collect()
}

#[test]
fn fixture_findings_match_golden() {
    let units = fixture_units();
    assert!(units.len() >= 27, "fixture corpus went missing: {units:?}");
    let findings = lint_files(&units);
    let mut got = String::new();
    for finding in &findings {
        got.push_str(&finding.to_string());
        got.push('\n');
    }
    let expected =
        std::fs::read_to_string(fixtures_dir().join("expected.txt")).expect("golden file");
    assert_eq!(
        got, expected,
        "fixture findings drifted from fixtures/expected.txt; if the rule \
         engine changed intentionally, regenerate the golden with \
         `cd crates/simlint/fixtures && cargo run -q -p simlint -- annot fleet r1 r2 r3 r4 r5 r6 r7 r8 r9 > expected.txt`"
    );
}

#[test]
fn fixture_json_matches_golden() {
    let findings = lint_files(&fixture_units());
    let got = render_json(&findings);
    let expected =
        std::fs::read_to_string(fixtures_dir().join("expected.json")).expect("json golden file");
    assert_eq!(
        got, expected,
        "JSON rendering drifted from fixtures/expected.json; if the change is \
         intentional, regenerate with `cd crates/simlint/fixtures && \
         cargo run -q -p simlint -- --json annot fleet r1 r2 r3 r4 r5 r6 r7 r8 r9 > expected.json`"
    );
}

#[test]
fn every_violation_fixture_fires_and_every_suppressed_fixture_is_clean() {
    // Per-file pass: each fixture is written to be self-contained, so
    // single-file and workspace lints agree on it.
    let mut violations = 0;
    let mut suppressed = 0;
    for f in collect_rs_files(&fixtures_dir()) {
        let name = f.file_stem().unwrap().to_string_lossy().into_owned();
        let rel = f
            .strip_prefix(fixtures_dir())
            .expect("fixture path")
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&f).expect("readable fixture");
        let findings = lint_source(&rel, &src);
        if name.starts_with("violation") || name.starts_with("malformed") {
            violations += 1;
            assert!(!findings.is_empty(), "{} found nothing", f.display());
        } else if name.starts_with("suppressed") {
            suppressed += 1;
            assert!(
                findings.is_empty(),
                "{} should be clean, got: {findings:?}",
                f.display()
            );
        } else {
            panic!("unclassified fixture {}", f.display());
        }
    }
    // One positive and one suppressed case per rule (four R4 pairs for
    // the fleet fault-tolerance files, two R1 pairs: direct and
    // let-bound alias), plus the annotation-grammar corpus.
    assert_eq!((violations, suppressed), (15, 14));
}

#[test]
fn binary_exits_nonzero_per_violation_and_zero_on_suppressed() {
    let bin = env!("CARGO_BIN_EXE_simlint");
    for f in collect_rs_files(&fixtures_dir()) {
        let name = f.file_stem().unwrap().to_string_lossy().into_owned();
        // Paths are passed relative to the fixtures dir: an absolute
        // path would carry a `crates/simlint/` segment and the crate
        // classifier would read the fixture as simlint's own
        // (non-replay-critical) code.
        let rel = f.strip_prefix(fixtures_dir()).expect("fixture path");
        let out = Command::new(bin)
            .arg(rel)
            .current_dir(fixtures_dir())
            .output()
            .expect("simlint binary runs");
        let code = out.status.code();
        if name.starts_with("suppressed") {
            assert_eq!(code, Some(0), "{}: {out:?}", f.display());
        } else {
            assert_eq!(code, Some(1), "{}: {out:?}", f.display());
        }
    }
}
