#![warn(missing_docs)]
//! simlint: the workspace's static-analysis pass for simulation
//! invariants.
//!
//! The simulator's headline guarantee — bit-identical replays across
//! runs, thread counts, and refactors — rests on invariants that rustc
//! cannot see: no iteration order may leak out of a `HashMap`, no
//! wall-clock or ambient entropy may enter the event loop, every KV
//! allocation must flow through the lease table, and the driver's
//! failure paths must not panic. Each of these was historically enforced
//! by review and rediscovered by proptest failures; simlint checks them
//! at `check.sh` time instead.
//!
//! The tool is self-contained: a lightweight lexer ([`lexer`]) feeds a
//! token-pattern rule engine ([`rules`]) — no external parser, no type
//! information. Rules R1–R6 and R9 are per-file: they track
//! `HashMap`/`HashSet`/`KvPool`-typed *bindings* declared in the same
//! file (fields, lets, params, struct-literal inits) and flag
//! suspicious operations on them. Rules R7 and R8 are
//! *interprocedural*: a workspace symbol index ([`symbols`]) and a
//! conservative call graph ([`callgraph`]) let them reason about what a
//! function can transitively reach, so an entropy source hidden two
//! helpers deep still taints the engine entrypoint that calls it.
//! False positives are expected to be rare and are silenced with an
//! audited inline annotation ([`annot`]):
//!
//! ```text
//! // simlint: allow(R1) reason="order-insensitive counter fold"
//! ```
//!
//! # Rules
//!
//! | id | name | scope | checks |
//! |----|------|-------|--------|
//! | R1 | unordered-iter | `gpusim`, `serving`, `baselines`, `core`, `fleet` (non-test) | `.iter()/.keys()/.values()/.drain()/…` or `for … in &m` on a `HashMap`/`HashSet` binding (including aliases bound through an intermediate `let`), unless the same statement chain sorts or collects into an ordered container |
//! | R2 | entropy | everywhere except `simcore/src/rng.rs`, `bench/src/sweep.rs` | `Instant`, `SystemTime`, `thread_rng`, `rand::` |
//! | R3 | lease-hygiene | everywhere except `crates/kvcache/`, `serving/src/lease.rs` (non-test) | `KvPool::new` or alloc/free/lock calls on a `KvPool` binding |
//! | R4 | panic | `driver.rs`, `recovery.rs`, `faults.rs` (non-test) | `.unwrap()` / `.expect(…)` |
//! | R5 | float-order | everywhere (non-test) | `.sum::<f64>()` / `.fold(…)` fed by an unordered iterator |
//! | R6 | alloc-in-hot-loop | functions marked `// simlint: hot` | `Vec::new`, `vec!`, `.to_vec()`, `.clone()`, `.collect()` — per-event heap traffic on the simulator's hot path; reuse caller-owned scratch instead |
//! | R7 | entropy-taint | replay-critical entrypoints, workspace-wide | entrypoint (`Driver::run*`, `Instance::step_until`, `Fleet::step_all`, `Scheduler` impl methods) transitively reaches a function containing an R2 entropy source — even an allowlisted one |
//! | R8 | barrier-discipline | `gpusim`, `serving`, `baselines`, `core`, `fleet` (non-test) | fleet health signal reads (`dead_gpus`, `in_gray_fault`, `finished_latency`, `latency_exceeds`, `Observation` construction) outside barrier-scoped functions (`fleet::{health,failover,hedge,replicate}` plus `// simlint: barrier`) |
//! | R9 | shared-state | `gpusim`, `serving`, `baselines`, `core`, `fleet` (non-test) | `static mut`, `Mutex`, `RwLock`, `RefCell`, `Cell`, `OnceLock`, atomics — cross-thread shared mutable state that `fleet::step_all`'s scoped-thread determinism assumes away |
//!
//! Files whose path does not identify a workspace crate (fixtures,
//! ad-hoc runs) get the conservative treatment: every rule active.
//!
//! # Workspace semantics
//!
//! Because R7/R8 need the call graph, the unit of linting is a *set* of
//! files ([`lint_files`]), not a single file. The binary and
//! [`lint_workspace`] lint everything they are given as one workspace;
//! [`lint_source`] is the single-file special case (interprocedural
//! rules then only see that file's functions).
//!
//! # Exit status
//!
//! The `simlint` binary prints `file:line: rule-id: message` per finding
//! (or a JSON array under `--json`) and exits non-zero if any finding is
//! unsuppressed — including malformed annotations, which are findings
//! themselves (`annot`), so a typo in an `allow(…)` can never silently
//! disable a check.

pub mod annot;
pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod symbols;

use std::fmt;
use std::path::{Path, PathBuf};

/// The invariants simlint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: iteration order of a hash container leaks into replay state.
    UnorderedIter,
    /// R2: wall-clock or ambient entropy inside deterministic code.
    Entropy,
    /// R3: KV pool mutation bypassing the lease table.
    LeaseHygiene,
    /// R4: panic paths (`unwrap`/`expect`) in driver/recovery/faults.
    Panic,
    /// R5: floating-point reduction over an unordered iterator.
    FloatOrder,
    /// R6: heap allocation inside a `// simlint: hot` function.
    AllocInHot,
    /// R7: replay-critical entrypoint transitively reaches entropy.
    EntropyTaint,
    /// R8: fleet health signal read outside barrier scope.
    BarrierDiscipline,
    /// R9: shared mutable state in a replay-critical crate.
    SharedState,
    /// A `simlint:` comment that does not parse; not suppressible.
    Annotation,
}

impl Rule {
    /// All suppressible rules, in id order.
    pub const ALL: [Rule; 9] = [
        Rule::UnorderedIter,
        Rule::Entropy,
        Rule::LeaseHygiene,
        Rule::Panic,
        Rule::FloatOrder,
        Rule::AllocInHot,
        Rule::EntropyTaint,
        Rule::BarrierDiscipline,
        Rule::SharedState,
    ];

    /// Full id used in output lines, e.g. `R1-unordered-iter`.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::UnorderedIter => "R1-unordered-iter",
            Rule::Entropy => "R2-entropy",
            Rule::LeaseHygiene => "R3-lease-hygiene",
            Rule::Panic => "R4-panic",
            Rule::FloatOrder => "R5-float-order",
            Rule::AllocInHot => "R6-alloc-in-hot-loop",
            Rule::EntropyTaint => "R7-entropy-taint",
            Rule::BarrierDiscipline => "R8-barrier-discipline",
            Rule::SharedState => "R9-shared-state",
            Rule::Annotation => "annot",
        }
    }

    /// Short id accepted (and emitted) by annotations, e.g. `R1`.
    pub fn short_id(&self) -> &'static str {
        match self {
            Rule::UnorderedIter => "R1",
            Rule::Entropy => "R2",
            Rule::LeaseHygiene => "R3",
            Rule::Panic => "R4",
            Rule::FloatOrder => "R5",
            Rule::AllocInHot => "R6",
            Rule::EntropyTaint => "R7",
            Rule::BarrierDiscipline => "R8",
            Rule::SharedState => "R9",
            Rule::Annotation => "annot",
        }
    }

    /// Parses a rule id in short (`R1`) or full (`R1-unordered-iter`)
    /// form, case-insensitive. [`Rule::Annotation`] is intentionally not
    /// parseable: a broken annotation cannot be allowed away.
    pub fn parse(s: &str) -> Option<Rule> {
        let lower = s.to_ascii_lowercase();
        Rule::ALL.iter().copied().find(|r| {
            lower == r.short_id().to_ascii_lowercase() || lower == r.id().to_ascii_lowercase()
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as given to the linter (workspace-relative in the binary).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// One source file handed to [`lint_files`]: a `/`-separated relative
/// path (decides crate-scoped rule applicability, echoed into findings)
/// plus its full text.
#[derive(Debug, Clone)]
pub struct FileUnit {
    /// Path as given to the linter, `/`-separated.
    pub rel_path: String,
    /// Full source text.
    pub src: String,
}

/// Lints a set of files as one workspace. Per-file rules (R1–R6, R9)
/// see each file independently; interprocedural rules (R7, R8) see the
/// symbol index and call graph of the whole set. Findings are grouped
/// by file in input order, sorted by `(line, rule)` within each file.
pub fn lint_files(units: &[FileUnit]) -> Vec<Finding> {
    rules::lint_units(units)
}

/// Lints one file's source text. `rel_path` should use `/` separators;
/// it decides which crate-scoped rules apply and is echoed into the
/// findings. Suppressed findings are dropped; malformed annotations are
/// reported as [`Rule::Annotation`] findings. Interprocedural rules
/// (R7/R8) only see this single file's call graph.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_files(&[FileUnit {
        rel_path: rel_path.to_string(),
        src: src.to_string(),
    }])
}

/// Recursively collects `.rs` files under `dir`, sorted by path so the
/// lint run (and its output order) is deterministic across filesystems.
pub fn collect_rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Collects every `crates/*/src` tree under `root` (the workspace
/// layout) into [`FileUnit`]s with `root`-relative paths. Fixture
/// directories (anything outside `src/`) are not walked.
pub fn lint_workspace_units(root: &Path) -> std::io::Result<Vec<FileUnit>> {
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();
    let mut units = Vec::new();
    for dir in crate_dirs {
        for file in collect_rs_files(&dir.join("src")) {
            let src = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            units.push(FileUnit { rel_path: rel, src });
        }
    }
    Ok(units)
}

/// Lints the whole workspace under `root` as one unit.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(lint_files(&lint_workspace_units(root)?))
}

/// Stable 64-bit fingerprint for one finding: FNV-1a over the rule id,
/// file path, message, and the finding's occurrence index among
/// same-keyed findings in the run. The source *line* is deliberately
/// excluded so unrelated edits that renumber a file do not churn
/// fingerprints; the occurrence index keeps two identical findings in
/// one file distinguishable.
pub fn fingerprint(finding: &Finding, occurrence: u32) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0;
        h = h.wrapping_mul(PRIME);
    };
    eat(finding.rule.id().as_bytes());
    eat(finding.file.as_bytes());
    eat(finding.message.as_bytes());
    eat(occurrence.to_string().as_bytes());
    h
}

/// Renders findings as a JSON array (one object per line) with stable
/// fingerprints, for CI and tooling to diff structurally. The text
/// format stays the byte-golden human surface; this is the machine one.
pub fn render_json(findings: &[Finding]) -> String {
    use std::collections::BTreeMap;
    let mut seen: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        let key = (f.rule.id().to_string(), f.file.clone(), f.message.clone());
        let occ = seen.entry(key).or_insert(0);
        let fp = fingerprint(f, *occ);
        *occ += 1;
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"fingerprint\":\"{:016x}\"}}",
            json_escape(f.rule.id()),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            fp
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_roundtrip_through_parse() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.short_id()), Some(r));
            assert_eq!(Rule::parse(r.id()), Some(r));
            assert_eq!(Rule::parse(&r.id().to_uppercase()), Some(r));
        }
        assert_eq!(Rule::parse("annot"), None);
        assert_eq!(Rule::parse("R12"), None);
    }

    #[test]
    fn finding_display_matches_contract() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: Rule::Entropy,
            message: "no clocks".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: R2-entropy: no clocks"
        );
    }

    #[test]
    fn json_rendering_is_escaped_and_fingerprints_ignore_lines() {
        let f = |line| Finding {
            file: "crates/x/src/lib.rs".into(),
            line,
            rule: Rule::Entropy,
            message: "say \"no\" to clocks".into(),
        };
        // Same finding on a different line: identical fingerprint.
        assert_eq!(fingerprint(&f(7), 0), fingerprint(&f(99), 0));
        // Second occurrence of the same finding: distinct fingerprint.
        assert_ne!(fingerprint(&f(7), 0), fingerprint(&f(7), 1));
        let json = render_json(&[f(7), f(12)]);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("say \\\"no\\\" to clocks"));
        // Two entries, distinct fingerprints despite identical messages.
        let fps: Vec<&str> = json
            .match_indices("\"fingerprint\":\"")
            .map(|(i, pat)| &json[i + pat.len()..i + pat.len() + 16])
            .collect();
        assert_eq!(fps.len(), 2);
        assert_ne!(fps[0], fps[1]);
        assert_eq!(render_json(&[]), "[]\n");
    }
}
