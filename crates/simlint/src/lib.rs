#![warn(missing_docs)]
//! simlint: the workspace's static-analysis pass for simulation
//! invariants.
//!
//! The simulator's headline guarantee — bit-identical replays across
//! runs, thread counts, and refactors — rests on invariants that rustc
//! cannot see: no iteration order may leak out of a `HashMap`, no
//! wall-clock or ambient entropy may enter the event loop, every KV
//! allocation must flow through the lease table, and the driver's
//! failure paths must not panic. Each of these was historically enforced
//! by review and rediscovered by proptest failures; simlint checks them
//! at `check.sh` time instead.
//!
//! The tool is self-contained: a lightweight lexer ([`lexer`]) feeds a
//! per-file token-pattern rule engine ([`rules`]) — no external parser,
//! no type information. That makes the checks heuristic by design: they
//! track `HashMap`/`HashSet`/`KvPool`-typed *bindings* declared in the
//! same file (fields, lets, params, struct-literal inits) and flag
//! suspicious operations on them. False positives are expected to be
//! rare and are silenced with an audited inline annotation
//! ([`annot`]):
//!
//! ```text
//! // simlint: allow(R1) reason="order-insensitive counter fold"
//! ```
//!
//! # Rules
//!
//! | id | name | scope | checks |
//! |----|------|-------|--------|
//! | R1 | unordered-iter | `gpusim`, `serving`, `baselines`, `core` (non-test) | `.iter()/.keys()/.values()/.drain()/…` or `for … in &m` on a `HashMap`/`HashSet` binding, unless the same statement chain sorts or collects into an ordered container |
//! | R2 | entropy | everywhere except `simcore/src/rng.rs`, `bench/src/sweep.rs` | `Instant`, `SystemTime`, `thread_rng`, `rand::` |
//! | R3 | lease-hygiene | everywhere except `crates/kvcache/`, `serving/src/lease.rs` (non-test) | `KvPool::new` or alloc/free/lock calls on a `KvPool` binding |
//! | R4 | panic | `driver.rs`, `recovery.rs`, `faults.rs` (non-test) | `.unwrap()` / `.expect(…)` |
//! | R5 | float-order | everywhere (non-test) | `.sum::<f64>()` / `.fold(…)` fed by an unordered iterator |
//! | R6 | alloc-in-hot-loop | functions marked `// simlint: hot` | `Vec::new`, `vec!`, `.to_vec()`, `.clone()`, `.collect()` — per-event heap traffic on the simulator's hot path; reuse caller-owned scratch instead |
//!
//! Files whose path does not identify a workspace crate (fixtures,
//! ad-hoc runs) get the conservative treatment: every rule active.
//!
//! # Exit status
//!
//! The `simlint` binary prints `file:line: rule-id: message` per finding
//! and exits non-zero if any finding is unsuppressed — including
//! malformed annotations, which are findings themselves (`annot`), so a
//! typo in an `allow(…)` can never silently disable a check.

pub mod annot;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// The invariants simlint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: iteration order of a hash container leaks into replay state.
    UnorderedIter,
    /// R2: wall-clock or ambient entropy inside deterministic code.
    Entropy,
    /// R3: KV pool mutation bypassing the lease table.
    LeaseHygiene,
    /// R4: panic paths (`unwrap`/`expect`) in driver/recovery/faults.
    Panic,
    /// R5: floating-point reduction over an unordered iterator.
    FloatOrder,
    /// R6: heap allocation inside a `// simlint: hot` function.
    AllocInHot,
    /// A `simlint:` comment that does not parse; not suppressible.
    Annotation,
}

impl Rule {
    /// All suppressible rules, in id order.
    pub const ALL: [Rule; 6] = [
        Rule::UnorderedIter,
        Rule::Entropy,
        Rule::LeaseHygiene,
        Rule::Panic,
        Rule::FloatOrder,
        Rule::AllocInHot,
    ];

    /// Full id used in output lines, e.g. `R1-unordered-iter`.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::UnorderedIter => "R1-unordered-iter",
            Rule::Entropy => "R2-entropy",
            Rule::LeaseHygiene => "R3-lease-hygiene",
            Rule::Panic => "R4-panic",
            Rule::FloatOrder => "R5-float-order",
            Rule::AllocInHot => "R6-alloc-in-hot-loop",
            Rule::Annotation => "annot",
        }
    }

    /// Short id accepted (and emitted) by annotations, e.g. `R1`.
    pub fn short_id(&self) -> &'static str {
        match self {
            Rule::UnorderedIter => "R1",
            Rule::Entropy => "R2",
            Rule::LeaseHygiene => "R3",
            Rule::Panic => "R4",
            Rule::FloatOrder => "R5",
            Rule::AllocInHot => "R6",
            Rule::Annotation => "annot",
        }
    }

    /// Parses a rule id in short (`R1`) or full (`R1-unordered-iter`)
    /// form, case-insensitive. [`Rule::Annotation`] is intentionally not
    /// parseable: a broken annotation cannot be allowed away.
    pub fn parse(s: &str) -> Option<Rule> {
        let lower = s.to_ascii_lowercase();
        Rule::ALL.iter().copied().find(|r| {
            lower == r.short_id().to_ascii_lowercase() || lower == r.id().to_ascii_lowercase()
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as given to the linter (workspace-relative in the binary).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Lints one file's source text. `rel_path` should use `/` separators;
/// it decides which crate-scoped rules apply and is echoed into the
/// findings. Suppressed findings are dropped; malformed annotations are
/// reported as [`Rule::Annotation`] findings.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    rules::lint_source(rel_path, src)
}

/// Recursively collects `.rs` files under `dir`, sorted by path so the
/// lint run (and its output order) is deterministic across filesystems.
pub fn collect_rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Lints every `crates/*/src` tree under `root` (the workspace layout),
/// returning findings with `root`-relative paths. Fixture directories
/// (anything outside `src/`) are not walked.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();
    let mut findings = Vec::new();
    for dir in crate_dirs {
        for file in collect_rs_files(&dir.join("src")) {
            let src = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(lint_source(&rel, &src));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_roundtrip_through_parse() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.short_id()), Some(r));
            assert_eq!(Rule::parse(r.id()), Some(r));
            assert_eq!(Rule::parse(&r.id().to_uppercase()), Some(r));
        }
        assert_eq!(Rule::parse("annot"), None);
        assert_eq!(Rule::parse("R9"), None);
    }

    #[test]
    fn finding_display_matches_contract() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: Rule::Entropy,
            message: "no clocks".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: R2-entropy: no clocks"
        );
    }
}
