//! A lightweight, panic-free Rust lexer.
//!
//! simlint's rules are token-pattern checks, not type checks, so all the
//! lexer has to get right is the part rustc's grammar makes subtle:
//! telling code apart from the places identifiers may appear but mean
//! nothing — string/char literals, comments, raw strings — and keeping
//! an accurate line number for every token. It deliberately does *not*
//! build a syntax tree; the rule engine works on the flat token stream
//! plus a side list of line comments (where suppression annotations
//! live).
//!
//! The lexer is total: any byte sequence produces *some* token stream
//! without panicking, so a malformed source file degrades into noisy
//! tokens rather than a crashed lint run.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// What was lexed.
    pub kind: TokKind,
}

/// Token categories — only as fine-grained as the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `self`, …).
    Ident(String),
    /// A single punctuation byte (`.`, `:`, `(`, `&`, …). Multi-byte
    /// operators appear as consecutive tokens (`::` is `:`, `:`).
    Punct(char),
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`); contents dropped.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`); contents dropped.
    CharLit,
    /// A lifetime (`'a`); name dropped.
    Lifetime,
    /// A numeric literal (`42`, `1.5e3`, `0xff_u64`); value dropped.
    Num,
}

/// A `//` line comment: its 1-based line and the text after the `//`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based source line the comment sits on.
    pub line: u32,
    /// Everything after the leading `//`, untrimmed.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// `//` comments in source order (block comments are discarded —
    /// suppression annotations are line comments by grammar).
    pub comments: Vec<LineComment>,
}

/// Lexes `src` into tokens and line comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    line,
                    text: String::from_utf8_lossy(&b[start..j]).into_owned(),
                });
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment; contents (and any `//` inside)
                // are discarded.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token {
                    line: tok_line,
                    kind: TokKind::Str,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let tok_line = line;
                let (next, kind) = skip_prefixed_literal(b, i, &mut line);
                i = next;
                out.tokens.push(Token {
                    line: tok_line,
                    kind,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident
                // NOT followed by a closing `'` (which would make it a
                // char literal like `'a'`).
                let is_lifetime = match b.get(i + 1) {
                    Some(&n) if n.is_ascii_alphabetic() || n == b'_' => {
                        let mut j = i + 2;
                        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        b.get(j) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Lifetime,
                    });
                    i = j;
                } else {
                    let tok_line = line;
                    i = skip_char_literal(b, i, &mut line);
                    out.tokens.push(Token {
                        line: tok_line,
                        kind: TokKind::CharLit,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Ident(String::from_utf8_lossy(&b[start..j]).into_owned()),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                i = skip_number(b, i);
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Num,
                });
            }
            _ => {
                // Punctuation (or a stray non-ASCII byte, which only
                // occurs inside already-skipped literals/comments in
                // valid Rust; degrade it to punctuation).
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct(c as char),
                });
                i += 1;
                // Skip UTF-8 continuation bytes so we never split a
                // code point into several phantom puncts.
                while i < b.len() && (b[i] & 0b1100_0000) == 0b1000_0000 {
                    i += 1;
                }
            }
        }
    }
    out
}

/// True when position `i` begins `r"`, `r#"`, `b"`, `br"`, `b'`, … —
/// i.e. the `r`/`b` is a literal prefix, not an identifier.
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    // Not a prefix when part of a longer identifier (`radius`, `bytes`)
    // — only when immediately followed by quote machinery.
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'\'') || b.get(j) == Some(&b'"') {
            return !prev_is_ident(b, i);
        }
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
        if b.get(j) == Some(&b'"') {
            return !prev_is_ident(b, i);
        }
    }
    false
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Skips a literal introduced by `r`/`b`/`br` at `i`; returns the index
/// past it and the token kind.
fn skip_prefixed_literal(b: &[u8], mut i: usize, line: &mut u32) -> (usize, TokKind) {
    if b[i] == b'b' {
        i += 1;
        if b.get(i) == Some(&b'\'') {
            return (skip_char_literal(b, i, line), TokKind::CharLit);
        }
        if b.get(i) == Some(&b'"') {
            return (skip_string(b, i, line), TokKind::Str);
        }
    }
    // Raw string: r##"…"## with any number of hashes.
    debug_assert_eq!(b[i], b'r');
    i += 1;
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return (i + 1 + hashes, TokKind::Str);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (i, TokKind::Str)
}

/// Skips a `"…"` string starting at the opening quote; handles `\"` and
/// counts embedded newlines.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'…'` char literal starting at the opening quote.
fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                // Malformed; stop at the newline so the rest of the
                // file still lexes.
                *line += 1;
                return i + 1;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a numeric literal: digits, `_` separators, hex/oct/bin bodies,
/// a fraction only when `.` is followed by a digit (so ranges `0..n`
/// and method calls stay separate tokens), exponents, type suffixes.
fn skip_number(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
        i += 1;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        // `1.5e-3`: pull in a sign right after an exponent marker.
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') && (b[i - 1] == b'e' || b[i - 1] == b'E') {
            i += 1;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let x = "Instant::now() in a string";
            // Instant::now() in a comment
            /* Instant in /* nested */ block */
            let r = r#"Instant raw "quoted" body"#;
            let c = 'I';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn line_comments_are_captured_with_lines() {
        let src = "let a = 1;\n// simlint: allow(R1) reason=\"x\"\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("simlint"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let src = "for i in 0..10 { let y = 1.5e-3; let z = 0xff_u64; }";
        let lexed = lex(src);
        let nums = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .count();
        assert_eq!(nums, 4, "{:?}", lexed.tokens);
        // The range dots survive as punctuation.
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;";
        let lexed = lex(src);
        let t_line = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("t".into()))
            .map(|t| t.line);
        assert_eq!(t_line, Some(4));
    }

    #[test]
    fn byte_literals_lex_as_literals() {
        let ids = idents("let x = b\"bytes\"; let y = b'\\n'; let radius = 1;");
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "radius"]);
    }

    #[test]
    fn lexer_is_total_on_garbage() {
        // Unterminated everything — must not panic.
        let _ = lex("let s = \"unterminated");
        let _ = lex("r#\"unterminated raw");
        let _ = lex("'\\");
        let _ = lex("/* unterminated block");
        let _ = lex("é 漢字 \u{1F600}");
    }
}
