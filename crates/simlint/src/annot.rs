//! Simlint directives: `// simlint: allow(<rules>) reason="…"`,
//! `// simlint: hot`, and `// simlint: barrier`.
//!
//! Every exception to a rule must be written down where reviewers see
//! it. The grammar is deliberately rigid — one annotation per comment,
//! rules by id, a mandatory non-empty quoted reason:
//!
//! ```text
//! // simlint: allow(R1) reason="order-insensitive counter fold"
//! // simlint: allow(R1, R5) reason="sorted on the next line"
//! ```
//!
//! Rule ids are accepted in short (`R1`) or full (`R1-unordered-iter`)
//! form, case-insensitive.
//!
//! The second directive, `// simlint: hot`, marks the function declared
//! directly below it as hot-path code: rule R6 then forbids heap
//! allocation (`Vec::new`, `vec!`, `.to_vec()`, `.clone()`,
//! `.collect()`) inside that function's body.
//!
//! The third directive, `// simlint: barrier`, marks the function
//! declared directly below it as barrier-scoped: it runs only at fleet
//! merge barriers, so rule R8 permits it (and any function reachable
//! exclusively from barrier-scoped functions) to read fleet health
//! signals. Unlike `allow`, a barrier marker is not a suppression — it
//! extends the checked scope, and mismarking a mid-step function is a
//! reviewable claim sitting right next to the code.
//!
//! A comment that *starts* with `simlint:` but does not parse as either
//! directive — unknown rule, missing or empty reason, stray trailing
//! text — suppresses nothing and is itself reported as a
//! [`Rule::Annotation`] finding, so a typo cannot silently disable a
//! check.

use crate::Rule;

/// A parsed suppression annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Rules this annotation suppresses (non-empty, source order).
    pub rules: Vec<Rule>,
    /// The mandatory human-written justification (non-empty, trimmed).
    pub reason: String,
}

impl Annotation {
    /// Renders the annotation in canonical comment form (without the
    /// leading `//`): `simlint: allow(R1, R5) reason="…"`.
    pub fn format(&self) -> String {
        let ids: Vec<&str> = self.rules.iter().map(|r| r.short_id()).collect();
        format!(
            "simlint: allow({}) reason=\"{}\"",
            ids.join(", "),
            self.reason
        )
    }
}

/// A parsed `simlint:` comment directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `allow(<rules>) reason="…"`: an audited suppression.
    Allow(Annotation),
    /// `hot`: the function below must not allocate (rule R6).
    Hot,
    /// `barrier`: the function below is barrier-scoped and may read
    /// fleet health signals (rule R8).
    Barrier,
}

/// Why a `simlint:`-prefixed comment failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotError {
    /// The text after `simlint:` did not match `allow(<rules>) reason="…"`
    /// or the bare `hot` / `barrier` markers.
    Malformed,
    /// A rule id inside `allow(…)` is not a known rule.
    UnknownRule(String),
    /// The reason string is missing, unterminated, or empty/whitespace.
    EmptyReason,
}

impl AnnotError {
    /// Human-readable description used in the emitted finding.
    pub fn message(&self) -> String {
        match self {
            AnnotError::Malformed => {
                "malformed annotation; expected `simlint: allow(<rules>) reason=\"…\"`, \
                 `simlint: hot`, or `simlint: barrier`"
                    .into()
            }
            AnnotError::UnknownRule(r) => format!("unknown rule `{r}` in allow(…)"),
            AnnotError::EmptyReason => {
                "suppression must carry a non-empty reason=\"…\" justification".into()
            }
        }
    }
}

/// Parses the text of one line comment (everything after `//`).
///
/// Returns `None` when the comment is not simlint-directed at all,
/// `Some(Ok(_))` for a valid directive, and `Some(Err(_))` for a
/// comment that claims to be one but is broken.
pub fn parse_directive(text: &str) -> Option<Result<Directive, AnnotError>> {
    let t = text.trim();
    let rest = t.strip_prefix("simlint:")?;
    if rest.trim() == "hot" {
        return Some(Ok(Directive::Hot));
    }
    if rest.trim() == "barrier" {
        return Some(Ok(Directive::Barrier));
    }
    Some(parse_body(rest).map(Directive::Allow))
}

/// [`parse_directive`] restricted to suppression annotations; `hot` and
/// `barrier` markers read as non-simlint comments (`None`).
pub fn parse_comment(text: &str) -> Option<Result<Annotation, AnnotError>> {
    match parse_directive(text)? {
        Ok(Directive::Allow(a)) => Some(Ok(a)),
        Ok(Directive::Hot) | Ok(Directive::Barrier) => None,
        Err(e) => Some(Err(e)),
    }
}

fn parse_body(rest: &str) -> Result<Annotation, AnnotError> {
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow").ok_or(AnnotError::Malformed)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or(AnnotError::Malformed)?;
    let close = rest.find(')').ok_or(AnnotError::Malformed)?;
    let rule_list = &rest[..close];
    let rest = rest[close + 1..].trim_start();

    let mut rules = Vec::new();
    for raw in rule_list.split(',') {
        let raw = raw.trim();
        if raw.is_empty() {
            return Err(AnnotError::Malformed);
        }
        match Rule::parse(raw) {
            Some(r) => rules.push(r),
            None => return Err(AnnotError::UnknownRule(raw.to_string())),
        }
    }
    if rules.is_empty() {
        return Err(AnnotError::Malformed);
    }

    let rest = rest.strip_prefix("reason").ok_or(AnnotError::EmptyReason)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('=').ok_or(AnnotError::EmptyReason)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"').ok_or(AnnotError::EmptyReason)?;
    let close = rest.find('"').ok_or(AnnotError::EmptyReason)?;
    let reason = rest[..close].trim();
    if reason.is_empty() {
        return Err(AnnotError::EmptyReason);
    }
    let trailing = rest[close + 1..].trim();
    if !trailing.is_empty() {
        return Err(AnnotError::Malformed);
    }
    Ok(Annotation {
        rules,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_comments_are_not_annotations() {
        assert_eq!(parse_comment(" just a comment about simlint"), None);
        assert_eq!(parse_comment(""), None);
    }

    #[test]
    fn valid_single_and_multi_rule() {
        let a = parse_comment(" simlint: allow(R1) reason=\"sorted below\"")
            .unwrap()
            .unwrap();
        assert_eq!(a.rules, vec![Rule::UnorderedIter]);
        assert_eq!(a.reason, "sorted below");

        let a = parse_comment("simlint: allow(R1, r5-float-order) reason=\"x\"")
            .unwrap()
            .unwrap();
        assert_eq!(a.rules, vec![Rule::UnorderedIter, Rule::FloatOrder]);
    }

    #[test]
    fn reasonless_or_empty_reason_is_rejected() {
        assert_eq!(
            parse_comment("simlint: allow(R1)").unwrap(),
            Err(AnnotError::EmptyReason)
        );
        assert_eq!(
            parse_comment("simlint: allow(R1) reason=\"  \"").unwrap(),
            Err(AnnotError::EmptyReason)
        );
        assert_eq!(
            parse_comment("simlint: allow(R1) reason=\"unterminated").unwrap(),
            Err(AnnotError::EmptyReason)
        );
    }

    #[test]
    fn unknown_rule_and_trailing_garbage_are_rejected() {
        assert_eq!(
            parse_comment("simlint: allow(R12) reason=\"x\"").unwrap(),
            Err(AnnotError::UnknownRule("R12".into()))
        );
        assert_eq!(
            parse_comment("simlint: allow(R1) reason=\"x\" plus junk").unwrap(),
            Err(AnnotError::Malformed)
        );
        assert_eq!(
            parse_comment("simlint: disallow(R1) reason=\"x\"").unwrap(),
            Err(AnnotError::Malformed)
        );
    }

    #[test]
    fn hot_marker_parses_and_rejects_trailing_text() {
        assert_eq!(parse_directive(" simlint: hot"), Some(Ok(Directive::Hot)));
        assert_eq!(
            parse_directive("simlint:   hot  "),
            Some(Ok(Directive::Hot))
        );
        // `hot` plus anything else is loud, never silently ignored.
        assert_eq!(
            parse_directive("simlint: hot path"),
            Some(Err(AnnotError::Malformed))
        );
        assert_eq!(
            parse_directive("simlint: hotfix"),
            Some(Err(AnnotError::Malformed))
        );
        // The allow-only view treats markers as non-annotations.
        assert_eq!(parse_comment("simlint: hot"), None);
    }

    #[test]
    fn barrier_marker_parses_and_rejects_trailing_text() {
        assert_eq!(
            parse_directive(" simlint: barrier"),
            Some(Ok(Directive::Barrier))
        );
        assert_eq!(
            parse_directive("simlint:   barrier  "),
            Some(Ok(Directive::Barrier))
        );
        assert_eq!(
            parse_directive("simlint: barrier scope"),
            Some(Err(AnnotError::Malformed))
        );
        assert_eq!(
            parse_directive("simlint: barriers"),
            Some(Err(AnnotError::Malformed))
        );
        assert_eq!(parse_comment("simlint: barrier"), None);
    }

    #[test]
    fn format_parse_roundtrip() {
        let a = Annotation {
            rules: vec![Rule::Entropy, Rule::Panic],
            reason: "wall-clock timing of the smoke bench only".into(),
        };
        let parsed = parse_comment(&a.format()).unwrap().unwrap();
        assert_eq!(parsed, a);
    }
}
