//! The rule engine: per-file token-pattern rules (R1–R6, R9) plus the
//! workspace phase that runs the interprocedural rules (R7, R8).
//!
//! Per file, the engine works on the flat token stream from
//! [`crate::lexer`] plus side tables computed up front:
//!
//! 1. **`#[cfg(test)]` spans** — line ranges of test-gated items.
//!    Rules R1/R3/R4/R5/R8/R9 skip them (test assertions legitimately
//!    poke at raw pools and unwrap); R2 does *not* — entropy in a test
//!    makes the test itself flaky.
//! 2. **binding types** — names declared `HashMap`/`HashSet`-typed or
//!    `KvPool`-typed anywhere in the file (struct fields, lets, params,
//!    struct-literal inits), plus *aliases*: `let snapshot = &self.m;`
//!    marks `snapshot` unordered when `m` is. Receiver resolution is
//!    name-based: the engine sees `self.transferring.drain()` and asks
//!    "is `transferring` hash-typed in this file?".
//! 3. **suppressions** — parsed `// simlint: allow(…) reason="…"`
//!    annotations by line. An annotation suppresses matching findings
//!    on its own line and the line directly below (put it at the end of
//!    the offending line or on its own line right above).
//!
//! The workspace phase then builds a [`SymbolIndex`] and [`CallGraph`]
//! over *all* files of the run and evaluates R7 (entropy taint
//! propagated backwards to replay-critical entrypoints) and R8 (fleet
//! signal reads outside the barrier-scoped function set).
//!
//! Everything here is heuristic, deliberately biased toward false
//! positives: an over-flag costs one audited annotation, an under-flag
//! costs a nondeterministic replay hunted by proptest.

use crate::annot::{self, Directive};
use crate::callgraph::CallGraph;
use crate::lexer::{lex, LineComment, TokKind, Token};
use crate::symbols::{FnSym, SymbolIndex};
use crate::{FileUnit, Finding, Rule};
use std::collections::{BTreeSet, HashMap as StdHashMap};

/// Crates whose scheduling state feeds replay-visible decisions; R1
/// applies only here (by `crates/<dir>` name, `None` = unknown file →
/// treated as critical).
const REPLAY_CRITICAL: [&str; 5] = ["gpusim", "serving", "baselines", "core", "fleet"];

/// Files allowed to touch wall-clock / entropy sources (R2): the seeded
/// RNG itself and the sweep worker pool (which times real threads, not
/// simulated ones).
const ENTROPY_ALLOWED: [&str; 2] = ["crates/simcore/src/rng.rs", "crates/bench/src/sweep.rs"];

/// Identifiers that mark ambient entropy (R2, and R7 taint sources).
const ENTROPY_IDENTS: [&str; 3] = ["Instant", "SystemTime", "thread_rng"];

/// The only legal homes of raw `KvPool` traffic (R3): the pool crate
/// and the lease table that wraps it.
const POOL_ALLOWED_PREFIX: &str = "crates/kvcache/";
const POOL_ALLOWED_FILE: &str = "crates/serving/src/lease.rs";

/// `&mut self` methods of `KvPool` that move resources; calling one on
/// a raw pool binding outside the allowed files bypasses lease
/// accounting.
const POOL_MUTATORS: [&str; 9] = [
    "match_prefix",
    "lock_prefix",
    "unlock",
    "insert",
    "try_alloc_private",
    "free_private",
    "set_capacity_tokens",
    "protect_prefix",
    "unprotect_prefix",
];

/// Files whose panics take down a whole serving run (R4): the driver's
/// failure-handling files plus the fleet's fault-tolerance tier (a
/// panic in health/failover/replication/hedging code kills every
/// instance of the fleet at once).
const PANIC_FREE_FILES: [&str; 8] = [
    "driver.rs",
    "recovery.rs",
    "faults.rs",
    "instance.rs",
    "health.rs",
    "failover.rs",
    "replicate.rs",
    "hedge.rs",
];

/// Iterator-producing methods whose order reflects hash layout.
const UNORDERED_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Idents that, appearing later in the same statement chain, restore a
/// deterministic order (sorts, ordered collections, the shared drain
/// helpers) or consume the iterator order-insensitively.
const ORDER_MARKERS: [&str; 18] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "drain_sorted",
    "take_sorted",
    "count",
    "len",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "is_empty",
];

/// Order-insensitive boolean consumers (short-circuit order affects
/// speed, never the result).
const BOOL_MARKERS: [&str; 3] = ["all", "any", "contains"];

/// Shared-mutable-state wrapper types banned in replay-critical crates
/// (R9). `Atomic*` is matched by prefix.
const SHARED_STATE_IDENTS: [&str; 9] = [
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
];

/// Files whose fns are barrier-scoped by construction (R8 seed set):
/// the fleet's merge-barrier tier itself.
const BARRIER_SEED_FILES: [&str; 4] = [
    "crates/fleet/src/health.rs",
    "crates/fleet/src/failover.rs",
    "crates/fleet/src/hedge.rs",
    "crates/fleet/src/replicate.rs",
];

/// Fleet health signal reads (R8): call names whose results are only
/// stepping-order independent when sampled at a merge barrier.
const SIGNAL_READS: [&str; 5] = [
    "num_dead_gpus",
    "dead_gpus",
    "in_gray_fault",
    "finished_latency",
    "latency_exceeds",
];

/// Lints a set of files as one workspace; the only entry point
/// (re-exported as [`crate::lint_files`] / [`crate::lint_source`]).
pub fn lint_units(units: &[FileUnit]) -> Vec<Finding> {
    let lexed: Vec<_> = units.iter().map(|u| lex(&u.src)).collect();
    let mut per_unit: Vec<Vec<Finding>> = Vec::with_capacity(units.len());
    let mut supps: Vec<Suppressions> = Vec::with_capacity(units.len());
    let mut infos: Vec<UnitInfo> = Vec::with_capacity(units.len());
    let mut symbols = SymbolIndex::default();

    for (ui, u) in units.iter().enumerate() {
        let ctx = FileCtx::new(&u.rel_path, &lexed[ui].tokens);
        let (supp, hot_lines, barrier_lines, mut findings) =
            parse_annotations(&u.rel_path, &lexed[ui].comments);
        let hot_spans = resolve_marker_spans(&ctx, &hot_lines, "hot", &mut findings);
        let barrier_spans = resolve_marker_spans(&ctx, &barrier_lines, "barrier", &mut findings);

        run_unordered_rules(&ctx, &mut findings); // R1 + R5
        run_entropy_rule(&ctx, &mut findings); // R2
        run_lease_rule(&ctx, &mut findings); // R3
        run_panic_rule(&ctx, &mut findings); // R4
        run_alloc_rule(&ctx, &hot_spans, &mut findings); // R6
        run_shared_state_rule(&ctx, &mut findings); // R9

        symbols.scan_unit(ui, &lexed[ui].tokens, &ctx.test_spans);
        infos.push(UnitInfo {
            replay_critical: ctx.replay_critical(),
            test_spans: ctx.test_spans.clone(),
            barrier_fn_lines: barrier_spans.iter().map(|s| s.0).collect(),
        });
        per_unit.push(findings);
        supps.push(supp);
    }

    let toks: Vec<&[Token]> = lexed.iter().map(|l| l.tokens.as_slice()).collect();
    let graph = CallGraph::build(&symbols, &toks);
    run_taint_rule(units, &symbols, &graph, &toks, &mut per_unit); // R7
    run_barrier_rule(units, &symbols, &graph, &toks, &infos, &mut per_unit); // R8

    let mut out = Vec::new();
    for (ui, mut findings) in per_unit.into_iter().enumerate() {
        findings.retain(|f| f.rule == Rule::Annotation || !supps[ui].allows(f.line, f.rule));
        // One finding per (line, rule, message): a single statement can
        // trip the same pattern twice and a single annotation answers
        // for the line.
        let mut seen = BTreeSet::new();
        findings.retain(|f| seen.insert((f.line, f.rule, f.message.clone())));
        findings.sort_by_key(|a| (a.line, a.rule));
        out.extend(findings);
    }
    out
}

/// Per-unit facts the workspace phase needs after the per-file pass.
struct UnitInfo {
    replay_critical: bool,
    test_spans: Vec<(u32, u32)>,
    /// Declaration lines of fns marked `// simlint: barrier`.
    barrier_fn_lines: Vec<u32>,
}

/// Per-line suppression table.
struct Suppressions {
    by_line: StdHashMap<u32, Vec<Rule>>,
}

impl Suppressions {
    fn allows(&self, line: u32, rule: Rule) -> bool {
        // Same line (trailing comment) or the line directly above.
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.by_line.get(l).is_some_and(|rs| rs.contains(&rule)))
    }
}

fn parse_annotations(
    rel_path: &str,
    comments: &[LineComment],
) -> (Suppressions, Vec<u32>, Vec<u32>, Vec<Finding>) {
    let mut by_line: StdHashMap<u32, Vec<Rule>> = StdHashMap::new();
    let mut hot_lines = Vec::new();
    let mut barrier_lines = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        match annot::parse_directive(&c.text) {
            None => {}
            Some(Ok(Directive::Allow(a))) => by_line.entry(c.line).or_default().extend(a.rules),
            Some(Ok(Directive::Hot)) => hot_lines.push(c.line),
            Some(Ok(Directive::Barrier)) => barrier_lines.push(c.line),
            Some(Err(e)) => findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::Annotation,
                message: e.message(),
            }),
        }
    }
    (Suppressions { by_line }, hot_lines, barrier_lines, findings)
}

/// Resolves each `// simlint: <label>` marker (`hot` or `barrier`) to
/// the span of the function declared below it: `(fn line, body end
/// line)`. A marker whose next `fn` is more than a few lines away (or
/// missing) is dangling — reported loudly as an `annot` finding rather
/// than silently scoping nothing.
fn resolve_marker_spans(
    ctx: &FileCtx<'_>,
    marker_lines: &[u32],
    label: &str,
    findings: &mut Vec<Finding>,
) -> Vec<(u32, u32)> {
    let tokens = ctx.tokens;
    let mut spans = Vec::new();
    for &marker in marker_lines {
        let fn_idx = tokens.iter().position(|t| {
            t.line > marker
                && t.line <= marker.saturating_add(8)
                && matches!(&t.kind, TokKind::Ident(s) if s == "fn")
        });
        let Some(i) = fn_idx else {
            findings.push(ctx.finding(
                marker,
                Rule::Annotation,
                format!(
                    "dangling `simlint: {label}` marker; it must sit directly above the \
                     `fn` it marks"
                ),
            ));
            continue;
        };
        // Find the body: first `{` at bracket depth 0 after the
        // signature. A `;` first means a bodyless declaration.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') if depth <= 0 => break,
                TokKind::Punct('{') if depth <= 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            findings.push(ctx.finding(
                marker,
                Rule::Annotation,
                format!(
                    "`simlint: {label}` marks a bodyless `fn`; the marker belongs on the \
                     implementation"
                ),
            ));
            continue;
        };
        let mut braces = 1i32;
        let mut k = open + 1;
        while k < tokens.len() && braces > 0 {
            match tokens[k].kind {
                TokKind::Punct('{') => braces += 1,
                TokKind::Punct('}') => braces -= 1,
                _ => {}
            }
            k += 1;
        }
        let end = tokens
            .get(k.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(tokens[open].line);
        spans.push((tokens[i].line, end));
    }
    spans
}

/// Everything the per-file rules need to know about one file.
struct FileCtx<'a> {
    rel_path: &'a str,
    tokens: &'a [Token],
    /// `crates/<name>` component of the path, if any.
    crate_name: Option<String>,
    file_name: String,
    /// Line ranges (inclusive) of `#[cfg(test)]`-gated items.
    test_spans: Vec<(u32, u32)>,
    /// Binding names with `HashMap`/`HashSet` type evidence.
    unordered: BTreeSet<String>,
    /// Binding names with `KvPool` type evidence.
    pools: BTreeSet<String>,
    /// Subset of `unordered` that got there via a `let` alias of an
    /// unordered binding (no type token of their own); by-value loops
    /// over these are still hash-ordered.
    alias_unordered: BTreeSet<String>,
}

impl<'a> FileCtx<'a> {
    fn new(rel_path: &'a str, tokens: &'a [Token]) -> FileCtx<'a> {
        let components: Vec<&str> = rel_path.split('/').collect();
        let crate_name = components
            .iter()
            .position(|&c| c == "crates")
            .and_then(|i| components.get(i + 1))
            .map(|s| s.to_string());
        let file_name = components.last().copied().unwrap_or(rel_path).to_string();
        let mut ctx = FileCtx {
            rel_path,
            tokens,
            crate_name,
            file_name,
            test_spans: Vec::new(),
            unordered: BTreeSet::new(),
            pools: BTreeSet::new(),
            alias_unordered: BTreeSet::new(),
        };
        ctx.test_spans = find_cfg_test_spans(tokens);
        collect_bindings(
            tokens,
            &mut ctx.unordered,
            &mut ctx.pools,
            &mut ctx.alias_unordered,
        );
        ctx
    }

    fn replay_critical(&self) -> bool {
        match &self.crate_name {
            Some(c) => REPLAY_CRITICAL.contains(&c.as_str()),
            None => true, // unknown file: conservative
        }
    }

    fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    fn entropy_allowed(&self) -> bool {
        ENTROPY_ALLOWED.iter().any(|f| self.rel_path.ends_with(f))
    }

    fn pool_allowed(&self) -> bool {
        self.rel_path.contains(POOL_ALLOWED_PREFIX) || self.rel_path.ends_with(POOL_ALLOWED_FILE)
    }

    fn panic_free_file(&self) -> bool {
        PANIC_FREE_FILES.iter().any(|f| self.file_name.ends_with(f))
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i)?.kind {
            TokKind::Ident(ref s) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i), Some(t) if t.kind == TokKind::Punct(c))
    }

    fn finding(&self, line: u32, rule: Rule, message: String) -> Finding {
        Finding {
            file: self.rel_path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// Finds line spans of items gated behind `#[cfg(test)]` (or any `cfg`
/// attribute mentioning `test`, e.g. `cfg(all(test, feature = "x"))`).
fn find_cfg_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 1;
        let inner = matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct('!'));
        if inner {
            j += 1;
        }
        if !matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct('[')) {
            i += 1;
            continue;
        }
        // Scan the attribute body for `cfg` … `test` and find its `]`.
        let mut depth = 1i32;
        let mut k = j + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while k < tokens.len() && depth > 0 {
            match &tokens[k].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident(s) if s == "cfg" => saw_cfg = true,
                TokKind::Ident(s) if s == "test" => saw_test = true,
                _ => {}
            }
            k += 1;
        }
        if !(saw_cfg && saw_test) {
            i = k;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test-gated.
            let end = tokens.last().map(|t| t.line).unwrap_or(start_line);
            spans.push((1, end));
            return spans;
        }
        // Skip any further stacked attributes, then find the item's
        // body: first `{` at paren-depth 0 (brace-match it) or a `;`.
        while matches!(tokens.get(k), Some(t) if t.kind == TokKind::Punct('#')) {
            let mut d = 0i32;
            k += 1;
            while k < tokens.len() {
                match tokens[k].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        let mut paren = 0i32;
        let mut end_line = None;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                TokKind::Punct(';') if paren == 0 => {
                    end_line = Some(tokens[k].line);
                    break;
                }
                TokKind::Punct('{') if paren == 0 => {
                    let mut braces = 1i32;
                    let mut m = k + 1;
                    while m < tokens.len() && braces > 0 {
                        match tokens[m].kind {
                            TokKind::Punct('{') => braces += 1,
                            TokKind::Punct('}') => braces -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    end_line = Some(tokens.get(m - 1).map(|t| t.line).unwrap_or(start_line));
                    k = m;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let end = end_line.unwrap_or_else(|| tokens.last().map(|t| t.line).unwrap_or(start_line));
        spans.push((start_line, end));
        i = k.max(i + 1);
    }
    spans
}

/// Records names with `HashMap`/`HashSet` or `KvPool` type evidence.
///
/// Two direct patterns:
/// * `name :` followed (within the same field/param/ascription, i.e.
///   before `,` `;` `=` `)` `{` or 12 tokens) by the type name — covers
///   struct fields, fn params, let ascriptions, and struct-literal
///   inits like `transferring: HashMap::new()`.
/// * `let [mut] name … = … HashMap::… ;` — constructor calls.
///
/// Then an alias fixpoint: `let alias = [&][mut] path.to.name;` marks
/// `alias` unordered when `name` already is. This closes the R1
/// false-negative where the container is bound through an intermediate
/// `let` before iteration (`let snapshot = &self.m; for x in snapshot`)
/// — no `HashMap` token appears in the iterating statement, so only
/// the alias chain knows the order is hash-dependent.
fn collect_bindings(
    tokens: &[Token],
    unordered: &mut BTreeSet<String>,
    pools: &mut BTreeSet<String>,
    alias_unordered: &mut BTreeSet<String>,
) {
    let ident = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| matches!(tokens.get(i), Some(t) if t.kind == TokKind::Punct(c));

    for i in 0..tokens.len() {
        // Pattern 1: `name : … Type`.
        if let Some(name) = ident(i) {
            // `:` but not `::` on either side.
            if punct(i + 1, ':') && !punct(i + 2, ':') && (i == 0 || !punct(i - 1, ':')) {
                let mut j = i + 2;
                let limit = (i + 14).min(tokens.len());
                while j < limit {
                    match &tokens[j].kind {
                        TokKind::Punct(',' | ';' | '=' | ')' | '{' | '}') => break,
                        TokKind::Ident(t) if t == "HashMap" || t == "HashSet" => {
                            unordered.insert(name.to_string());
                            break;
                        }
                        TokKind::Ident(t) if t == "KvPool" => {
                            pools.insert(name.to_string());
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        // Pattern 2: `let [mut] name … = … {HashMap,HashSet,KvPool}::`.
        if ident(i) == Some("let") {
            let mut j = i + 1;
            if ident(j) == Some("mut") {
                j += 1;
            }
            let Some(name) = ident(j) else { continue };
            // Scan the statement (to `;` at depth 0) for a constructor.
            let mut depth = 0i32;
            let mut k = j + 1;
            let mut saw_eq = false;
            while k < tokens.len() && k < j + 120 {
                match &tokens[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(';') if depth <= 0 => break,
                    TokKind::Punct('=') if depth == 0 => saw_eq = true,
                    TokKind::Ident(t)
                        if saw_eq
                            && (t == "HashMap" || t == "HashSet")
                            && punct(k + 1, ':')
                            && punct(k + 2, ':') =>
                    {
                        unordered.insert(name.to_string());
                    }
                    TokKind::Ident(t)
                        if saw_eq && t == "KvPool" && punct(k + 1, ':') && punct(k + 2, ':') =>
                    {
                        pools.insert(name.to_string());
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }

    // Alias fixpoint: `let [mut] alias = [&][mut] a.b.name ;` where
    // `name` is already unordered. Iterate so alias-of-alias chains
    // converge.
    loop {
        let mut changed = false;
        for i in 0..tokens.len() {
            if ident(i) != Some("let") {
                continue;
            }
            let mut j = i + 1;
            if ident(j) == Some("mut") {
                j += 1;
            }
            let Some(name) = ident(j) else { continue };
            // Plain `=` binding only (an ascribed alias would have hit
            // pattern 1 if it carried the type).
            if !punct(j + 1, '=') {
                continue;
            }
            let mut k = j + 2;
            if punct(k, '&') {
                k += 1;
            }
            if ident(k) == Some("mut") {
                k += 1;
            }
            // A dotted ident path, nothing else, ending at `;`.
            let last = loop {
                match ident(k) {
                    Some(s) => {
                        k += 1;
                        if punct(k, '.') {
                            k += 1;
                            continue;
                        }
                        break Some(s);
                    }
                    None => break None,
                }
            };
            if !punct(k, ';') {
                continue;
            }
            let Some(src) = last else { continue };
            if src == "self" || src == name {
                continue;
            }
            if unordered.contains(src) && !unordered.contains(name) {
                unordered.insert(name.to_string());
                alias_unordered.insert(name.to_string());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Resolves the receiver name of a `.method(` call at token index `dot`
/// (the `.`): `name.m(…)` or `self.name.m(…)`. Chained/expression
/// receivers resolve to `None`.
fn receiver_name(tokens: &[Token], dot: usize) -> Option<&str> {
    if dot == 0 {
        return None;
    }
    match &tokens[dot - 1].kind {
        TokKind::Ident(name) if name != "self" => Some(name.as_str()),
        _ => None,
    }
}

/// R1 + R5: unordered iteration and float reductions fed by it.
fn run_unordered_rules(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        // Method-call form: `recv.method(` with an unordered receiver.
        if ctx.punct(i, '.') {
            let Some(m) = ctx.ident(i + 1) else { continue };
            if !UNORDERED_METHODS.contains(&m) || !ctx.punct(i + 2, '(') {
                continue;
            }
            let Some(recv) = receiver_name(tokens, i) else {
                continue;
            };
            if !ctx.unordered.contains(recv) {
                continue;
            }
            let line = tokens[i + 1].line;
            if ctx.in_test_span(line) {
                continue;
            }
            let chain = chain_span(ctx, i + 1);
            emit_unordered(ctx, findings, line, recv, m, &chain);
        }
        // Loop form: `for pat in &[mut] recv {` / `for pat in [&]self.recv {`
        // / `for pat in alias {` when `alias` came from an unordered `let`.
        if ctx.ident(i) == Some("for") && ctx.replay_critical() {
            let Some((recv, line, borrowed)) = for_loop_receiver(ctx, i) else {
                continue;
            };
            if !ctx.unordered.contains(recv) || ctx.in_test_span(line) {
                continue;
            }
            let amp = if borrowed { "&" } else { "" };
            findings.push(ctx.finding(
                line,
                Rule::UnorderedIter,
                format!(
                    "`for … in {amp}{recv}` iterates a HashMap/HashSet in hash order; \
                     replay order must not depend on it (sort first, use \
                     serving::order::drain_sorted, or annotate)"
                ),
            ));
        }
    }
}

/// Matches `for … in &[mut] name {`, `for … in [&]self.name {`, or —
/// for alias bindings only — by-value `for … in name {`; returns the
/// receiver name, the line to report, and whether the loop borrows.
/// Plain by-value loops over directly-typed bindings stay excluded:
/// moving a container out of a binding is the local-`Vec` shape, while
/// the hash-order hazard comes from borrowing a long-lived field. An
/// alias binding (`let snapshot = &self.m;`) is usually already a
/// borrow, so its by-value loop form iterates the hash container.
fn for_loop_receiver<'t>(ctx: &'t FileCtx<'t>, for_idx: usize) -> Option<(&'t str, u32, bool)> {
    let tokens = ctx.tokens;
    // Find `in` at pattern depth 0 within a short window.
    let mut depth = 0i32;
    let mut j = for_idx + 1;
    let limit = (for_idx + 40).min(tokens.len());
    loop {
        if j >= limit {
            return None;
        }
        match &tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Ident(s) if s == "in" && depth == 0 => break,
            TokKind::Punct('{') | TokKind::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    let mut k = j + 1;
    let mut borrowed = false;
    if ctx.punct(k, '&') {
        borrowed = true;
        k += 1;
    }
    if ctx.ident(k) == Some("mut") {
        k += 1;
    }
    if ctx.ident(k) == Some("self") && ctx.punct(k + 1, '.') {
        borrowed = true;
        k += 2;
    }
    let name = ctx.ident(k)?;
    // Only the bare-binding form: `recv.iter()`-style is the method
    // path, and `recv.field` sub-expressions are unknown.
    if !ctx.punct(k + 1, '{') {
        return None;
    }
    if !borrowed && !ctx.alias_unordered.contains(name) {
        return None;
    }
    Some((name, tokens[k].line, borrowed))
}

/// What the rest of the statement chain after an unordered call says.
struct ChainInfo {
    /// An order-restoring / order-insensitive marker appears.
    ordered: bool,
    /// A float reduction (`sum::<f64>` or `fold`) appears before any
    /// ordering marker.
    float_reduction: Option<&'static str>,
}

/// Scans the statement chain starting at the flagged method ident.
fn chain_span(ctx: &FileCtx<'_>, start: usize) -> ChainInfo {
    let tokens = ctx.tokens;
    let mut info = ChainInfo {
        ordered: false,
        float_reduction: None,
    };
    let mut depth = 0i32;
    let mut brace_depth = 0i32;
    let mut k = start;
    let limit = (start + 300).min(tokens.len());
    while k < limit {
        match &tokens[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') => {
                if depth <= 0 {
                    break; // block starts (for-loop/if body): chain over
                }
                brace_depth += 1;
            }
            TokKind::Punct('}') => {
                brace_depth -= 1;
                if brace_depth < 0 {
                    break;
                }
            }
            TokKind::Punct(';') if depth <= 0 => break,
            TokKind::Ident(s) => {
                if ORDER_MARKERS.contains(&s.as_str()) || BOOL_MARKERS.contains(&s.as_str()) {
                    if info.float_reduction.is_none() {
                        info.ordered = true;
                    }
                    // A sort after the reduction does not unorder it,
                    // but a reduction after a sort is fine — handled by
                    // checking float_reduction first above.
                } else if s == "fold" && info.float_reduction.is_none() && !info.ordered {
                    info.float_reduction = Some("fold");
                } else if s == "sum" && info.float_reduction.is_none() && !info.ordered {
                    // `sum::<f64>()` is order-sensitive; integer sums
                    // (`sum::<u64>()`) are commutative and count as
                    // order-insensitive. Untyped `sum()` stays flagged
                    // as plain R1 (conservative).
                    if ctx.punct(k + 1, ':') && ctx.punct(k + 2, ':') && ctx.punct(k + 3, '<') {
                        match ctx.ident(k + 4) {
                            Some("f64") | Some("f32") => info.float_reduction = Some("sum"),
                            Some(_) => info.ordered = true,
                            None => {}
                        }
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    info
}

fn emit_unordered(
    ctx: &FileCtx<'_>,
    findings: &mut Vec<Finding>,
    line: u32,
    recv: &str,
    method: &str,
    chain: &ChainInfo,
) {
    if let Some(red) = chain.float_reduction {
        findings.push(ctx.finding(
            line,
            Rule::FloatOrder,
            format!(
                "float `{red}` reduction fed by `{recv}.{method}()` iterates in hash \
                 order; float addition is not associative, so the result is \
                 run-dependent (collect + sort first, or annotate)"
            ),
        ));
    }
    if chain.ordered || !ctx.replay_critical() {
        return;
    }
    findings.push(ctx.finding(
        line,
        Rule::UnorderedIter,
        format!(
            "`{recv}.{method}()` iterates a HashMap/HashSet in hash order inside a \
             replay-critical crate; sort or collect into a BTreeMap in the same \
             statement, use serving::order::drain_sorted, or annotate"
        ),
    ));
}

/// R2: wall-clock / ambient entropy.
fn run_entropy_rule(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.entropy_allowed() {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        let TokKind::Ident(s) = &t.kind else { continue };
        let hit = ENTROPY_IDENTS.contains(&s.as_str())
            || (s == "rand" && ctx.punct(i + 1, ':') && ctx.punct(i + 2, ':'));
        if hit {
            findings.push(ctx.finding(
                t.line,
                Rule::Entropy,
                format!(
                    "`{s}` is ambient entropy/wall-clock; simulation state must come \
                     from simcore::SimTime and the seeded simcore rng (or annotate \
                     for reporting-only timing)"
                ),
            ));
        }
    }
}

/// R3: raw KvPool traffic outside the lease table.
fn run_lease_rule(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.pool_allowed() {
        return;
    }
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        // `KvPool::<ctor>` anywhere constructs an unaudited pool.
        if ctx.ident(i) == Some("KvPool") && ctx.punct(i + 1, ':') && ctx.punct(i + 2, ':') {
            let line = tokens[i].line;
            if ctx.in_test_span(line) {
                continue;
            }
            findings.push(
                ctx.finding(
                    line,
                    Rule::LeaseHygiene,
                    "direct `KvPool` construction outside serving::lease / kvcache; engines \
                 must hold pools behind a LeaseTable so the leak detector sees every \
                 allocation"
                        .to_string(),
                ),
            );
        }
        // `pool.mutator(` on a KvPool-typed binding.
        if ctx.punct(i, '.') {
            let Some(m) = ctx.ident(i + 1) else { continue };
            if !POOL_MUTATORS.contains(&m) || !ctx.punct(i + 2, '(') {
                continue;
            }
            let Some(recv) = receiver_name(tokens, i) else {
                continue;
            };
            if !ctx.pools.contains(recv) {
                continue;
            }
            let line = tokens[i + 1].line;
            if ctx.in_test_span(line) {
                continue;
            }
            findings.push(ctx.finding(
                line,
                Rule::LeaseHygiene,
                format!(
                    "`{recv}.{m}()` mutates a raw KvPool outside serving::lease / \
                     kvcache; route the operation through the LeaseTable so leases \
                     stay balanced"
                ),
            ));
        }
    }
}

/// R4: unwrap/expect in the driver's failure-handling files.
fn run_panic_rule(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx.panic_free_file() {
        return;
    }
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        if !ctx.punct(i, '.') {
            continue;
        }
        let Some(m) = ctx.ident(i + 1) else { continue };
        if (m == "unwrap" || m == "expect") && ctx.punct(i + 2, '(') {
            let line = tokens[i + 1].line;
            if ctx.in_test_span(line) {
                continue;
            }
            findings.push(ctx.finding(
                line,
                Rule::Panic,
                format!(
                    "`.{m}()` in a fail-stop-critical file; a panic here takes down \
                     the whole serving run — restructure (let-else/match), count the \
                     anomaly, or debug_assert + annotate"
                ),
            ));
        }
    }
}

/// Allocating calls flagged inside hot functions (R6). Method-call
/// forms; `Vec::new` / `vec!` are matched structurally.
const ALLOC_METHODS: [&str; 3] = ["to_vec", "clone", "collect"];

/// R6: heap allocation inside a `// simlint: hot` function. The hot
/// loop processes millions of events per run; a per-event `Vec` or
/// clone turns into allocator traffic that dominates the profile. Hot
/// functions take caller-owned scratch buffers instead; genuinely cold
/// sub-paths (error/rare branches) carry an audited `allow(R6)`.
fn run_alloc_rule(ctx: &FileCtx<'_>, hot_spans: &[(u32, u32)], findings: &mut Vec<Finding>) {
    if hot_spans.is_empty() {
        return;
    }
    let in_hot = |line: u32| hot_spans.iter().any(|&(a, b)| a <= line && line <= b);
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if !in_hot(line) {
            continue;
        }
        // `Vec::new(` / `Vec::with_capacity(` — fresh heap buffers.
        if ctx.ident(i) == Some("Vec") && ctx.punct(i + 1, ':') && ctx.punct(i + 2, ':') {
            if let Some(ctor) = ctx.ident(i + 3) {
                if ctor == "new" || ctor == "with_capacity" {
                    findings.push(ctx.finding(
                        line,
                        Rule::AllocInHot,
                        format!(
                            "`Vec::{ctor}` allocates inside a `simlint: hot` function; \
                             reuse a scratch buffer owned by the caller, or annotate a \
                             cold branch with allow(R6)"
                        ),
                    ));
                }
            }
        }
        // `vec![…]` — allocation plus per-element init.
        if ctx.ident(i) == Some("vec") && ctx.punct(i + 1, '!') {
            findings.push(
                ctx.finding(
                    line,
                    Rule::AllocInHot,
                    "`vec![…]` allocates inside a `simlint: hot` function; reuse a \
                 scratch buffer owned by the caller, or annotate a cold branch \
                 with allow(R6)"
                        .to_string(),
                ),
            );
        }
        // `.to_vec()` / `.clone()` / `.collect…` — hidden copies.
        if ctx.punct(i, '.') {
            let Some(m) = ctx.ident(i + 1) else { continue };
            if !ALLOC_METHODS.contains(&m) {
                continue;
            }
            let call = ctx.punct(i + 2, '(') || (ctx.punct(i + 2, ':') && ctx.punct(i + 3, ':'));
            if !call {
                continue;
            }
            findings.push(ctx.finding(
                tokens[i + 1].line,
                Rule::AllocInHot,
                format!(
                    "`.{m}()` allocates inside a `simlint: hot` function; reuse a \
                     scratch buffer owned by the caller (mem::take/swap for \
                     ownership moves), or annotate a cold branch with allow(R6)"
                ),
            ));
        }
    }
}

/// R9: shared mutable state in a replay-critical crate. Everything a
/// fleet member owns must be instance-local and merged at barriers;
/// `fleet::step_all` runs members on scoped threads *because* nothing
/// is shared, so a `Mutex` or atomic smuggled into engine state turns
/// thread scheduling into replay input.
fn run_shared_state_rule(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx.replay_critical() {
        return;
    }
    const TAIL: &str = "fleet::step_all's scoped-thread determinism assumes members share \
                        nothing mutable — keep state instance-owned and merge at \
                        barriers, or annotate with an audited allow(R9)";
    for (i, t) in ctx.tokens.iter().enumerate() {
        let TokKind::Ident(s) = &t.kind else { continue };
        if ctx.in_test_span(t.line) {
            continue;
        }
        if s == "static" && ctx.ident(i + 1) == Some("mut") {
            findings.push(ctx.finding(
                t.line,
                Rule::SharedState,
                format!(
                    "`static mut` is process-global mutable state in a replay-critical \
                     crate; {TAIL}"
                ),
            ));
        }
        let shared = SHARED_STATE_IDENTS.contains(&s.as_str())
            || (s.starts_with("Atomic") && s.len() > "Atomic".len());
        if shared {
            findings.push(ctx.finding(
                t.line,
                Rule::SharedState,
                format!(
                    "`{s}` is cross-thread shared mutable state in a replay-critical \
                     crate; {TAIL}"
                ),
            ));
        }
    }
}

/// A replay-critical entrypoint for R7: the functions whose transitive
/// call trees must be entropy-free for replays to be bit-identical.
fn is_replay_entrypoint(f: &FnSym) -> bool {
    if f.trait_name.as_deref() == Some("Scheduler") {
        return true;
    }
    matches!(
        (f.self_ty.as_deref(), f.name.as_str()),
        (Some("Driver"), n) if n.starts_with("run")
    ) || matches!(
        (f.self_ty.as_deref(), f.name.as_str()),
        (Some("Instance"), "step_until") | (Some("Fleet"), "step_all")
    )
}

/// First entropy ident inside a fn body, if any — the R7 direct-taint
/// predicate. Note it deliberately ignores both the `ENTROPY_ALLOWED`
/// file list and `allow(R2)` suppressions: an *audited* entropy source
/// is fine where it lives, but becomes a violation the moment engine
/// code can call it.
fn entropy_hit_in(tokens: &[Token], body: (usize, usize)) -> Option<(String, u32)> {
    let end = body.1.min(tokens.len());
    let punct = |i: usize, c: char| matches!(tokens.get(i), Some(t) if t.kind == TokKind::Punct(c));
    for (i, tok) in tokens.iter().enumerate().take(end).skip(body.0 + 1) {
        let TokKind::Ident(s) = &tok.kind else {
            continue;
        };
        if ENTROPY_IDENTS.contains(&s.as_str())
            || (s == "rand" && punct(i + 1, ':') && punct(i + 2, ':'))
        {
            return Some((s.clone(), tok.line));
        }
    }
    None
}

/// R7: entropy taint. Functions directly containing an entropy source
/// seed the taint; taint propagates backwards over the call graph; any
/// replay-critical entrypoint that became tainted is flagged, with the
/// (deterministic, shortest) call path in the message.
fn run_taint_rule(
    units: &[FileUnit],
    sym: &SymbolIndex,
    graph: &CallGraph,
    toks: &[&[Token]],
    per_unit: &mut [Vec<Finding>],
) {
    let n = sym.fns.len();
    let mut direct: Vec<Option<(String, u32)>> = vec![None; n];
    for (fi, f) in sym.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        direct[fi] = entropy_hit_in(toks[f.unit], f.body);
    }
    let seeds: Vec<usize> = (0..n).filter(|&i| direct[i].is_some()).collect();
    if seeds.is_empty() {
        return;
    }
    let tainted = graph.reaches(&seeds);
    let targets: Vec<bool> = direct.iter().map(|d| d.is_some()).collect();
    for (fi, f) in sym.fns.iter().enumerate() {
        if !tainted[fi] || f.in_test || !is_replay_entrypoint(f) {
            continue;
        }
        let path = graph.path_to(fi, &targets, &tainted);
        let src_fn = *path.last().unwrap_or(&fi);
        let (ident, src_line) = direct[src_fn].clone().unwrap_or_default();
        let chain = path
            .iter()
            .map(|&p| format!("`{}`", sym.fns[p].qualified()))
            .collect::<Vec<_>>()
            .join(" → ");
        let src_file = &units[sym.fns[src_fn].unit].rel_path;
        per_unit[f.unit].push(Finding {
            file: units[f.unit].rel_path.clone(),
            line: f.line,
            rule: Rule::EntropyTaint,
            message: format!(
                "replay-critical entrypoint `{}` can transitively reach ambient \
                 entropy via {chain}; `{}` touches `{ident}` ({src_file}:{src_line}) \
                 — even an allow(R2)-audited source must not be callable from engine \
                 code (route timing through simcore::SimTime, or annotate)",
                f.qualified(),
                sym.fns[src_fn].qualified(),
            ),
        });
    }
}

/// R8: barrier discipline. The barrier-scoped set starts from
/// `BARRIER_SEED_FILES` plus every fn marked `// simlint: barrier`,
/// then closes over the call graph: a fn joins when it has at least
/// one non-test caller and *all* its non-test callers are already
/// barrier-scoped. Any fleet signal read outside the set (in a
/// replay-critical file, outside tests) is flagged — except inside a
/// fn whose own name is the signal (the forwarding accessor that
/// *defines* the signal for its layer).
fn run_barrier_rule(
    units: &[FileUnit],
    sym: &SymbolIndex,
    graph: &CallGraph,
    toks: &[&[Token]],
    infos: &[UnitInfo],
    per_unit: &mut [Vec<Finding>],
) {
    let n = sym.fns.len();
    let seed_unit: Vec<bool> = units
        .iter()
        .map(|u| BARRIER_SEED_FILES.iter().any(|s| u.rel_path.ends_with(s)))
        .collect();
    let mut barrier = vec![false; n];
    for (fi, f) in sym.fns.iter().enumerate() {
        if seed_unit[f.unit] || infos[f.unit].barrier_fn_lines.contains(&f.line) {
            barrier[fi] = true;
        }
    }
    loop {
        let mut changed = false;
        for fi in 0..n {
            if barrier[fi] || sym.fns[fi].in_test {
                continue;
            }
            let mut callers = graph.callers[fi]
                .iter()
                .copied()
                .filter(|&c| !sym.fns[c].in_test)
                .peekable();
            if callers.peek().is_some() && callers.all(|c| barrier[c]) {
                barrier[fi] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    const WHERE: &str = "fleet signals may only be sampled at merge barriers \
                         (fleet::{health,failover,hedge,replicate} or a \
                         `// simlint: barrier` fn) so results cannot depend on \
                         stepping interleaving";
    for (ui, tokens) in toks.iter().enumerate() {
        if seed_unit[ui] || !infos[ui].replay_critical {
            continue;
        }
        for i in 0..tokens.len() {
            let TokKind::Ident(name) = &tokens[i].kind else {
                continue;
            };
            let line = tokens[i].line;
            let punct =
                |k: usize, c: char| matches!(tokens.get(k), Some(t) if t.kind == TokKind::Punct(c));
            let is_decl = i > 0 && matches!(&tokens[i - 1].kind, TokKind::Ident(p) if p == "fn");
            let sig_call = SIGNAL_READS.contains(&name.as_str()) && punct(i + 1, '(') && !is_decl;
            let obs = name == "Observation" && {
                let construct = punct(i + 1, '{') || (punct(i + 1, ':') && punct(i + 2, ':'));
                let prev_item_kw = i > 0
                    && matches!(&tokens[i - 1].kind,
                        TokKind::Ident(p)
                            if p == "struct" || p == "impl" || p == "trait"
                                || p == "enum" || p == "for" || p == "use");
                // `-> Observation {`: a return type, not a literal.
                let prev_arrow = i > 0 && tokens[i - 1].kind == TokKind::Punct('>');
                construct && !prev_item_kw && !prev_arrow
            };
            if !sig_call && !obs {
                continue;
            }
            if infos[ui]
                .test_spans
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
            {
                continue;
            }
            if let Some(o) = sym.innermost_at(ui, i) {
                if sym.fns[o].in_test {
                    continue;
                }
                // The accessor that defines/forwards the signal is the
                // signal, not a sample of it.
                if SIGNAL_READS.contains(&sym.fns[o].name.as_str()) {
                    continue;
                }
                if barrier[o] {
                    continue;
                }
            }
            let message = if obs {
                format!(
                    "`Observation` is constructed outside barrier scope; {WHERE} \
                     (move construction behind a barrier, or annotate)"
                )
            } else {
                format!(
                    "`{name}()` samples a fleet health signal outside barrier scope; \
                     {WHERE} (move the read behind a barrier, mark the enclosing fn \
                     `// simlint: barrier`, or annotate)"
                )
            };
            per_unit[ui].push(Finding {
                file: units[ui].rel_path.clone(),
                line,
                rule: Rule::BarrierDiscipline,
                message,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src)
    }

    const MAP_DECL: &str = "struct S { m: HashMap<u64, u32> }\n";

    #[test]
    fn r1_fires_on_unordered_iteration_in_critical_crate() {
        let src = format!("{MAP_DECL}fn f(s: &S) {{ for (k, _) in s.m.iter() {{ use_(k); }} }}");
        let f = lint("crates/serving/src/x.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnorderedIter);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn r1_silent_when_sorted_in_same_chain() {
        let src = format!(
            "{MAP_DECL}fn f(s: &mut S) {{ let mut v: Vec<_> = \
             s.m.drain().collect::<BTreeMap<_, _>>(); }}"
        );
        assert!(lint("crates/serving/src/x.rs", &src).is_empty());
        let src2 = format!("{MAP_DECL}fn f(s: &S) {{ let n = s.m.keys().count(); }}");
        assert!(lint("crates/serving/src/x.rs", &src2).is_empty());
    }

    #[test]
    fn r1_scoped_to_critical_crates_and_skips_tests() {
        let src = format!("{MAP_DECL}fn f(s: &S) {{ for (k, _) in s.m.iter() {{ u(k); }} }}");
        assert!(lint("crates/workload/src/x.rs", &src).is_empty());
        let test_src = format!(
            "{MAP_DECL}#[cfg(test)]\nmod tests {{ fn f(s: &super::S) {{ \
             for (k, _) in s.m.iter() {{ u(k); }} }} }}"
        );
        assert!(lint("crates/serving/src/x.rs", &test_src).is_empty());
    }

    #[test]
    fn r1_for_in_ref_form() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); \
                   for x in &m { u(x); } }";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnorderedIter);
    }

    #[test]
    fn r1_alias_let_binding_is_caught() {
        // The false-negative class: container escapes through a `let`
        // alias before iteration — no HashMap token in the loop
        // statement.
        let src = format!(
            "{MAP_DECL}impl S {{ fn sweep(&self) -> u64 {{\n\
             let snapshot = &self.m;\n\
             let mut acc = 0;\n\
             for (_k, v) in snapshot {{ acc += u64::from(*v); }}\n\
             acc }} }}"
        );
        let f = lint("crates/serving/src/x.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnorderedIter);
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("`for … in snapshot`"), "{f:?}");
        // Method calls through the alias are caught too, and alias
        // chains converge.
        let src2 = format!(
            "{MAP_DECL}fn g(s: &S) {{\n\
             let first = &s.m;\n\
             let second = first;\n\
             for k in second {{ u(k); }}\n}}"
        );
        let f2 = lint("crates/serving/src/x.rs", &src2);
        assert_eq!(f2.len(), 1, "{f2:?}");
        // By-value loops over directly-typed (non-alias) bindings stay
        // excluded — the local-Vec shape.
        let src3 = "fn h() { let v = collect_vec(); for x in v { u(x); } }";
        assert!(lint("crates/serving/src/x.rs", src3).is_empty());
    }

    #[test]
    fn r2_fires_everywhere_except_allowed_files() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let f = lint("crates/workload/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::Entropy));
        assert!(lint("crates/simcore/src/rng.rs", src).is_empty());
        assert!(lint("crates/bench/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn r3_fires_on_raw_pool_traffic_and_construction() {
        let src = "struct E { pool: KvPool }\nfn f(e: &mut E) { e.pool.free_private(4); }\n\
                   fn g() { let p = KvPool::new(10, 2); }";
        let f = lint("crates/baselines/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::LeaseHygiene));
        // The lease table itself and kvcache are exempt.
        assert!(lint("crates/serving/src/lease.rs", src).is_empty());
        assert!(lint("crates/kvcache/src/pool.rs", src).is_empty());
        // Read-only accessors on a pool binding are fine.
        let ro = "struct E { pool: KvPool }\nfn f(e: &E) -> u64 { e.pool.free_tokens() }";
        assert!(lint("crates/baselines/src/x.rs", ro).is_empty());
    }

    #[test]
    fn r4_fires_only_in_panic_free_files_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(lint("crates/serving/src/driver.rs", src).len(), 1);
        assert!(lint("crates/serving/src/metrics.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(lint("crates/serving/src/driver.rs", test_src).is_empty());
    }

    #[test]
    fn r5_fires_on_float_reductions_from_hash_iterators() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   fn f(s: &S) -> f64 { s.m.values().sum::<f64>() }";
        let f = lint("crates/workload/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::FloatOrder);
        // Integer sums are commutative: no R5 (and count as ordered for R1).
        let int = "struct S { m: HashMap<u64, u64> }\n\
                   fn f(s: &S) -> u64 { s.m.values().sum::<u64>() }";
        assert!(lint("crates/workload/src/x.rs", int).is_empty());
    }

    #[test]
    fn r6_fires_only_inside_hot_functions() {
        let src = "// simlint: hot\n\
                   fn step(out: &mut Vec<u32>) {\n\
                   let v = Vec::new();\n\
                   let w = vec![0u8; 4];\n\
                   let c = out.clone();\n\
                   let t = out.to_vec();\n\
                   let g: Vec<u32> = out.iter().copied().collect();\n\
                   }\n\
                   fn cold() { let v = Vec::new(); let w = x.clone(); }";
        let f = lint("crates/gpusim/src/x.rs", src);
        assert_eq!(f.len(), 5, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::AllocInHot));
        assert_eq!(
            f.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn r6_suppression_and_mem_take_are_clean() {
        let src = "// simlint: hot\n\
                   fn step(&mut self) {\n\
                   let buf = std::mem::take(&mut self.spare);\n\
                   // simlint: allow(R6) reason=\"cold fault-edge branch\"\n\
                   let snapshot = self.plan.clone();\n\
                   }";
        assert!(lint("crates/serving/src/x.rs", src).is_empty());
    }

    #[test]
    fn r7_taint_reaches_entrypoints_through_helpers() {
        let src = "impl Scheduler for VolatileMux {\n\
                   fn admit(&mut self, now_us: u64) -> u64 { now_us + probe() }\n\
                   }\n\
                   fn probe() -> u64 { inner_probe() }\n\
                   fn inner_probe() -> u64 {\n\
                   let t = Instant::now(); // simlint: allow(R2) reason=\"test\"\n\
                   0\n}\n";
        let f = lint("crates/baselines/src/x.rs", src);
        let r7: Vec<_> = f.iter().filter(|f| f.rule == Rule::EntropyTaint).collect();
        assert_eq!(r7.len(), 1, "{f:?}");
        assert_eq!(r7[0].line, 2);
        assert!(r7[0].message.contains("`VolatileMux::admit`"), "{f:?}");
        assert!(r7[0].message.contains("`probe`"), "{f:?}");
        assert!(r7[0].message.contains("`Instant`"), "{f:?}");
        // A clean entrypoint is silent.
        let clean = "impl Scheduler for TidyMux {\n\
                     fn admit(&mut self) -> u64 { helper() }\n}\n\
                     fn helper() -> u64 { 7 }\n";
        assert!(lint("crates/baselines/src/x.rs", clean)
            .iter()
            .all(|f| f.rule != Rule::EntropyTaint));
    }

    #[test]
    fn r7_ignores_test_only_edges_and_suppresses_at_entrypoint() {
        // Tainted helper called only from a cfg(test) fn: no taint.
        let src = "impl Driver { fn run_to_end(&mut self) -> u64 { step() } }\n\
                   fn step() -> u64 { 1 }\n\
                   fn clock_probe() -> u64 { let t = Instant::now(); 2 }\n\
                   // simlint: allow(R2) reason=\"test-only timing\"\n\
                   #[cfg(test)]\n\
                   mod tests { fn bench() { super::clock_probe(); super::step(); } }\n";
        let f = lint("crates/serving/src/x.rs", src);
        assert!(f.iter().all(|f| f.rule != Rule::EntropyTaint), "{f:?}");
        // Suppression sits on the entrypoint line (or the line above).
        let sup = "impl Scheduler for AuditedMux {\n\
                   // simlint: allow(R7) reason=\"reporting-only, audited\"\n\
                   fn admit(&mut self) -> u64 { probe2() }\n\
                   }\n\
                   fn probe2() -> u64 { let t = Instant::now(); 0 }\n\
                   // simlint: allow(R2) reason=\"reporting only\"\n";
        let f = lint("crates/baselines/src/x.rs", sup);
        assert!(f.iter().all(|f| f.rule != Rule::EntropyTaint), "{f:?}");
    }

    #[test]
    fn r8_signal_reads_need_barrier_scope() {
        let src = "struct Probe { gray: bool }\n\
                   impl Probe { fn in_gray_fault(&self) -> bool { self.gray } }\n\
                   fn midstep_poll(p: &Probe) -> bool { p.in_gray_fault() }\n";
        let f = lint("crates/fleet/src/lib.rs", src);
        let r8: Vec<_> = f
            .iter()
            .filter(|f| f.rule == Rule::BarrierDiscipline)
            .collect();
        assert_eq!(r8.len(), 1, "{f:?}");
        assert_eq!(r8[0].line, 3);
        // The forwarder (fn named like the signal) is exempt; so is a
        // fn marked `// simlint: barrier`, and fns only reachable from
        // barrier fns join the set through the closure.
        let ok = "struct Probe { gray: bool }\n\
                  impl Probe { fn in_gray_fault(&self) -> bool { self.gray } }\n\
                  // simlint: barrier\n\
                  fn merge_point(p: &Probe) -> bool { helper_read(p) }\n\
                  fn helper_read(p: &Probe) -> bool { p.in_gray_fault() }\n";
        let f = lint("crates/fleet/src/lib.rs", ok);
        assert!(f.iter().all(|f| f.rule != Rule::BarrierDiscipline), "{f:?}");
        // Seed files are barrier-scoped by construction.
        let seed = "fn fold(p: &super::Probe) -> bool { p.in_gray_fault() }\n";
        assert!(lint("crates/fleet/src/health.rs", seed).is_empty());
        // Non-replay-critical crates are out of scope.
        let f = lint("crates/workload/src/x.rs", src);
        assert!(f.iter().all(|f| f.rule != Rule::BarrierDiscipline));
    }

    #[test]
    fn r8_observation_constructions_are_sites() {
        let src = "pub struct Observation { pub dead_gpus: usize }\n\
                   fn synthesize() -> Observation {\n\
                   Observation { dead_gpus: 0 }\n\
                   }\n";
        let f = lint("crates/fleet/src/lib.rs", src);
        let r8: Vec<_> = f
            .iter()
            .filter(|f| f.rule == Rule::BarrierDiscipline)
            .collect();
        // Only the literal on line 3 — not the struct decl, not the
        // return type.
        assert_eq!(r8.len(), 1, "{f:?}");
        assert_eq!(r8[0].line, 3);
    }

    #[test]
    fn r9_flags_shared_state_in_critical_crates_only() {
        let src = "use std::sync::Mutex;\n\
                   struct S { tally: Mutex<u64>, hits: AtomicUsize }\n\
                   static mut LAST: u64 = 0;\n";
        let f = lint("crates/core/src/x.rs", src);
        let r9: Vec<_> = f.iter().filter(|f| f.rule == Rule::SharedState).collect();
        assert_eq!(r9.len(), 4, "{f:?}"); // use Mutex, field Mutex, AtomicUsize, static mut
        assert!(lint("crates/workload/src/x.rs", src)
            .iter()
            .all(|f| f.rule != Rule::SharedState));
        // Test spans are exempt; suppressions work.
        let gated = "#[cfg(test)]\nmod tests { use std::sync::Mutex; }\n";
        assert!(lint("crates/core/src/x.rs", gated).is_empty());
        let sup = "// simlint: allow(R9) reason=\"audited: debug trace only\"\n\
                   static mut TRACE: u64 = 0;\n";
        assert!(lint("crates/core/src/x.rs", sup).is_empty());
    }

    #[test]
    fn dangling_hot_marker_is_loud() {
        let src = "// simlint: hot\nconst X: u32 = 3;\n";
        let f = lint("crates/gpusim/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Annotation);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn dangling_barrier_marker_is_loud() {
        let src = "// simlint: barrier\nconst X: u32 = 3;\n";
        let f = lint("crates/fleet/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Annotation);
        assert!(f[0].message.contains("barrier"), "{f:?}");
    }

    #[test]
    fn suppression_works_on_same_and_previous_line() {
        let src = format!(
            "{MAP_DECL}fn f(s: &S) {{\n\
             // simlint: allow(R1) reason=\"order-insensitive counter\"\n\
             for (k, _) in s.m.iter() {{ u(k); }}\n\
             for (k, _) in s.m.iter() {{ u(k); }} // simlint: allow(R1) reason=\"same\"\n\
             }}"
        );
        assert!(lint("crates/serving/src/x.rs", &src).is_empty());
    }

    #[test]
    fn malformed_annotation_is_a_finding_and_suppresses_nothing() {
        let src = format!(
            "{MAP_DECL}fn f(s: &S) {{\n\
             // simlint: allow(R1)\n\
             for (k, _) in s.m.iter() {{ u(k); }}\n}}"
        );
        let f = lint("crates/serving/src/x.rs", &src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].rule, Rule::Annotation);
        assert_eq!(f[1].rule, Rule::UnorderedIter);
    }

    #[test]
    fn unknown_crate_paths_are_treated_as_critical() {
        let src = format!("{MAP_DECL}fn f(s: &S) {{ for (k, _) in s.m.iter() {{ u(k); }} }}");
        assert_eq!(lint("fixtures/r1/violation.rs", &src).len(), 1);
    }

    #[test]
    fn workspace_taint_crosses_files() {
        use crate::lint_files;
        let units = [
            FileUnit {
                rel_path: "crates/bench/src/timing.rs".into(),
                src: "pub fn wall_probe() -> u64 { let t = Instant::now(); 0 }\n\
                      // simlint: allow(R2) reason=\"sweep timing\"\n"
                    .into(),
            },
            FileUnit {
                rel_path: "crates/serving/src/driver.rs".into(),
                src: "impl Driver { pub fn run_to_end(&mut self) -> u64 { wall_probe() } }\n"
                    .into(),
            },
        ];
        let f = lint_files(&units);
        let r7: Vec<_> = f.iter().filter(|f| f.rule == Rule::EntropyTaint).collect();
        assert_eq!(r7.len(), 1, "{f:?}");
        assert_eq!(r7[0].file, "crates/serving/src/driver.rs");
        assert!(
            r7[0].message.contains("crates/bench/src/timing.rs:1"),
            "{f:?}"
        );
    }
}
