//! The per-file rule engine.
//!
//! Works on the flat token stream from [`crate::lexer`] plus three
//! per-file side tables computed up front:
//!
//! 1. **`#[cfg(test)]` spans** — line ranges of test-gated items.
//!    Rules R1/R3/R4/R5 skip them (test assertions legitimately poke at
//!    raw pools and unwrap); R2 does *not* — entropy in a test makes
//!    the test itself flaky.
//! 2. **binding types** — names declared `HashMap`/`HashSet`-typed or
//!    `KvPool`-typed anywhere in the file (struct fields, lets, params,
//!    struct-literal inits). Receiver resolution is name-based: the
//!    engine sees `self.transferring.drain()` and asks "is
//!    `transferring` hash-typed in this file?".
//! 3. **suppressions** — parsed `// simlint: allow(…) reason="…"`
//!    annotations by line. An annotation suppresses matching findings
//!    on its own line and the line directly below (put it at the end of
//!    the offending line or on its own line right above).
//!
//! Everything here is heuristic, deliberately biased toward false
//! positives: an over-flag costs one audited annotation, an under-flag
//! costs a nondeterministic replay hunted by proptest.

use crate::annot::{self, Directive};
use crate::lexer::{lex, LineComment, TokKind, Token};
use crate::{Finding, Rule};
use std::collections::{BTreeSet, HashMap as StdHashMap};

/// Crates whose scheduling state feeds replay-visible decisions; R1
/// applies only here (by `crates/<dir>` name, `None` = unknown file →
/// treated as critical).
const REPLAY_CRITICAL: [&str; 5] = ["gpusim", "serving", "baselines", "core", "fleet"];

/// Files allowed to touch wall-clock / entropy sources (R2): the seeded
/// RNG itself and the sweep worker pool (which times real threads, not
/// simulated ones).
const ENTROPY_ALLOWED: [&str; 2] = ["crates/simcore/src/rng.rs", "crates/bench/src/sweep.rs"];

/// Identifiers that mark ambient entropy (R2).
const ENTROPY_IDENTS: [&str; 3] = ["Instant", "SystemTime", "thread_rng"];

/// The only legal homes of raw `KvPool` traffic (R3): the pool crate
/// and the lease table that wraps it.
const POOL_ALLOWED_PREFIX: &str = "crates/kvcache/";
const POOL_ALLOWED_FILE: &str = "crates/serving/src/lease.rs";

/// `&mut self` methods of `KvPool` that move resources; calling one on
/// a raw pool binding outside the allowed files bypasses lease
/// accounting.
const POOL_MUTATORS: [&str; 9] = [
    "match_prefix",
    "lock_prefix",
    "unlock",
    "insert",
    "try_alloc_private",
    "free_private",
    "set_capacity_tokens",
    "protect_prefix",
    "unprotect_prefix",
];

/// Files whose panics take down a whole serving run (R4): the driver's
/// failure-handling files plus the fleet's fault-tolerance tier (a
/// panic in health/failover/replication/hedging code kills every
/// instance of the fleet at once).
const PANIC_FREE_FILES: [&str; 8] = [
    "driver.rs",
    "recovery.rs",
    "faults.rs",
    "instance.rs",
    "health.rs",
    "failover.rs",
    "replicate.rs",
    "hedge.rs",
];

/// Iterator-producing methods whose order reflects hash layout.
const UNORDERED_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Idents that, appearing later in the same statement chain, restore a
/// deterministic order (sorts, ordered collections, the shared drain
/// helpers) or consume the iterator order-insensitively.
const ORDER_MARKERS: [&str; 18] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "drain_sorted",
    "take_sorted",
    "count",
    "len",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "is_empty",
];

/// Order-insensitive boolean consumers (short-circuit order affects
/// speed, never the result).
const BOOL_MARKERS: [&str; 3] = ["all", "any", "contains"];

/// Lints one file; the only entry point (re-exported as
/// [`crate::lint_source`]).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let ctx = FileCtx::new(rel_path, &lexed.tokens);
    let (suppressions, hot_lines, mut findings) = parse_annotations(rel_path, &lexed.comments);
    let hot_spans = resolve_hot_spans(&ctx, &hot_lines, &mut findings);

    run_unordered_rules(&ctx, &mut findings); // R1 + R5
    run_entropy_rule(&ctx, &mut findings); // R2
    run_lease_rule(&ctx, &mut findings); // R3
    run_panic_rule(&ctx, &mut findings); // R4
    run_alloc_rule(&ctx, &hot_spans, &mut findings); // R6

    findings.retain(|f| f.rule == Rule::Annotation || !suppressions.allows(f.line, f.rule));
    // One finding per (line, rule): a single statement can trip the same
    // pattern twice and a single annotation answers for the line.
    let mut seen = BTreeSet::new();
    findings.retain(|f| seen.insert((f.line, f.rule, f.message.clone())));
    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

/// Per-line suppression table.
struct Suppressions {
    by_line: StdHashMap<u32, Vec<Rule>>,
}

impl Suppressions {
    fn allows(&self, line: u32, rule: Rule) -> bool {
        // Same line (trailing comment) or the line directly above.
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.by_line.get(l).is_some_and(|rs| rs.contains(&rule)))
    }
}

fn parse_annotations(
    rel_path: &str,
    comments: &[LineComment],
) -> (Suppressions, Vec<u32>, Vec<Finding>) {
    let mut by_line: StdHashMap<u32, Vec<Rule>> = StdHashMap::new();
    let mut hot_lines = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        match annot::parse_directive(&c.text) {
            None => {}
            Some(Ok(Directive::Allow(a))) => by_line.entry(c.line).or_default().extend(a.rules),
            Some(Ok(Directive::Hot)) => hot_lines.push(c.line),
            Some(Err(e)) => findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: Rule::Annotation,
                message: e.message(),
            }),
        }
    }
    (Suppressions { by_line }, hot_lines, findings)
}

/// Resolves each `// simlint: hot` marker to the body span of the
/// function declared below it. A marker whose next `fn` is more than a
/// few lines away (or missing) is dangling — reported loudly as an
/// `annot` finding rather than silently scoping nothing.
fn resolve_hot_spans(
    ctx: &FileCtx<'_>,
    hot_lines: &[u32],
    findings: &mut Vec<Finding>,
) -> Vec<(u32, u32)> {
    let tokens = ctx.tokens;
    let mut spans = Vec::new();
    for &marker in hot_lines {
        let fn_idx = tokens.iter().position(|t| {
            t.line > marker
                && t.line <= marker.saturating_add(8)
                && matches!(&t.kind, TokKind::Ident(s) if s == "fn")
        });
        let Some(i) = fn_idx else {
            findings.push(
                ctx.finding(
                    marker,
                    Rule::Annotation,
                    "dangling `simlint: hot` marker; it must sit directly above the \
                 `fn` it marks"
                        .to_string(),
                ),
            );
            continue;
        };
        // Find the body: first `{` at bracket depth 0 after the
        // signature. A `;` first means a bodyless declaration.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') if depth <= 0 => break,
                TokKind::Punct('{') if depth <= 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            findings.push(
                ctx.finding(
                    marker,
                    Rule::Annotation,
                    "`simlint: hot` marks a bodyless `fn`; the marker belongs on the \
                 implementation"
                        .to_string(),
                ),
            );
            continue;
        };
        let mut braces = 1i32;
        let mut k = open + 1;
        while k < tokens.len() && braces > 0 {
            match tokens[k].kind {
                TokKind::Punct('{') => braces += 1,
                TokKind::Punct('}') => braces -= 1,
                _ => {}
            }
            k += 1;
        }
        let end = tokens
            .get(k.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(tokens[open].line);
        spans.push((tokens[i].line, end));
    }
    spans
}

/// Everything the rules need to know about one file.
struct FileCtx<'a> {
    rel_path: &'a str,
    tokens: &'a [Token],
    /// `crates/<name>` component of the path, if any.
    crate_name: Option<String>,
    file_name: String,
    /// Line ranges (inclusive) of `#[cfg(test)]`-gated items.
    test_spans: Vec<(u32, u32)>,
    /// Binding names with `HashMap`/`HashSet` type evidence.
    unordered: BTreeSet<String>,
    /// Binding names with `KvPool` type evidence.
    pools: BTreeSet<String>,
}

impl<'a> FileCtx<'a> {
    fn new(rel_path: &'a str, tokens: &'a [Token]) -> FileCtx<'a> {
        let components: Vec<&str> = rel_path.split('/').collect();
        let crate_name = components
            .iter()
            .position(|&c| c == "crates")
            .and_then(|i| components.get(i + 1))
            .map(|s| s.to_string());
        let file_name = components.last().copied().unwrap_or(rel_path).to_string();
        let mut ctx = FileCtx {
            rel_path,
            tokens,
            crate_name,
            file_name,
            test_spans: Vec::new(),
            unordered: BTreeSet::new(),
            pools: BTreeSet::new(),
        };
        ctx.test_spans = find_cfg_test_spans(tokens);
        collect_bindings(tokens, &mut ctx.unordered, &mut ctx.pools);
        ctx
    }

    fn replay_critical(&self) -> bool {
        match &self.crate_name {
            Some(c) => REPLAY_CRITICAL.contains(&c.as_str()),
            None => true, // unknown file: conservative
        }
    }

    fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    fn entropy_allowed(&self) -> bool {
        ENTROPY_ALLOWED.iter().any(|f| self.rel_path.ends_with(f))
    }

    fn pool_allowed(&self) -> bool {
        self.rel_path.contains(POOL_ALLOWED_PREFIX) || self.rel_path.ends_with(POOL_ALLOWED_FILE)
    }

    fn panic_free_file(&self) -> bool {
        PANIC_FREE_FILES.iter().any(|f| self.file_name.ends_with(f))
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i)?.kind {
            TokKind::Ident(ref s) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i), Some(t) if t.kind == TokKind::Punct(c))
    }

    fn finding(&self, line: u32, rule: Rule, message: String) -> Finding {
        Finding {
            file: self.rel_path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// Finds line spans of items gated behind `#[cfg(test)]` (or any `cfg`
/// attribute mentioning `test`, e.g. `cfg(all(test, feature = "x"))`).
fn find_cfg_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 1;
        let inner = matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct('!'));
        if inner {
            j += 1;
        }
        if !matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct('[')) {
            i += 1;
            continue;
        }
        // Scan the attribute body for `cfg` … `test` and find its `]`.
        let mut depth = 1i32;
        let mut k = j + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while k < tokens.len() && depth > 0 {
            match &tokens[k].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident(s) if s == "cfg" => saw_cfg = true,
                TokKind::Ident(s) if s == "test" => saw_test = true,
                _ => {}
            }
            k += 1;
        }
        if !(saw_cfg && saw_test) {
            i = k;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test-gated.
            let end = tokens.last().map(|t| t.line).unwrap_or(start_line);
            spans.push((1, end));
            return spans;
        }
        // Skip any further stacked attributes, then find the item's
        // body: first `{` at paren-depth 0 (brace-match it) or a `;`.
        while matches!(tokens.get(k), Some(t) if t.kind == TokKind::Punct('#')) {
            let mut d = 0i32;
            k += 1;
            while k < tokens.len() {
                match tokens[k].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        let mut paren = 0i32;
        let mut end_line = None;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                TokKind::Punct(';') if paren == 0 => {
                    end_line = Some(tokens[k].line);
                    break;
                }
                TokKind::Punct('{') if paren == 0 => {
                    let mut braces = 1i32;
                    let mut m = k + 1;
                    while m < tokens.len() && braces > 0 {
                        match tokens[m].kind {
                            TokKind::Punct('{') => braces += 1,
                            TokKind::Punct('}') => braces -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    end_line = Some(tokens.get(m - 1).map(|t| t.line).unwrap_or(start_line));
                    k = m;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let end = end_line.unwrap_or_else(|| tokens.last().map(|t| t.line).unwrap_or(start_line));
        spans.push((start_line, end));
        i = k.max(i + 1);
    }
    spans
}

/// Records names with `HashMap`/`HashSet` or `KvPool` type evidence.
///
/// Two patterns:
/// * `name :` followed (within the same field/param/ascription, i.e.
///   before `,` `;` `=` `)` `{` or 12 tokens) by the type name — covers
///   struct fields, fn params, let ascriptions, and struct-literal
///   inits like `transferring: HashMap::new()`.
/// * `let [mut] name … = … HashMap::… ;` — constructor calls.
fn collect_bindings(
    tokens: &[Token],
    unordered: &mut BTreeSet<String>,
    pools: &mut BTreeSet<String>,
) {
    let ident = |i: usize| match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, c: char| matches!(tokens.get(i), Some(t) if t.kind == TokKind::Punct(c));

    for i in 0..tokens.len() {
        // Pattern 1: `name : … Type`.
        if let Some(name) = ident(i) {
            // `:` but not `::` on either side.
            if punct(i + 1, ':') && !punct(i + 2, ':') && (i == 0 || !punct(i - 1, ':')) {
                let mut j = i + 2;
                let limit = (i + 14).min(tokens.len());
                while j < limit {
                    match &tokens[j].kind {
                        TokKind::Punct(',' | ';' | '=' | ')' | '{' | '}') => break,
                        TokKind::Ident(t) if t == "HashMap" || t == "HashSet" => {
                            unordered.insert(name.to_string());
                            break;
                        }
                        TokKind::Ident(t) if t == "KvPool" => {
                            pools.insert(name.to_string());
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        // Pattern 2: `let [mut] name … = … {HashMap,HashSet,KvPool}::`.
        if ident(i) == Some("let") {
            let mut j = i + 1;
            if ident(j) == Some("mut") {
                j += 1;
            }
            let Some(name) = ident(j) else { continue };
            // Scan the statement (to `;` at depth 0) for a constructor.
            let mut depth = 0i32;
            let mut k = j + 1;
            let mut saw_eq = false;
            while k < tokens.len() && k < j + 120 {
                match &tokens[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(';') if depth <= 0 => break,
                    TokKind::Punct('=') if depth == 0 => saw_eq = true,
                    TokKind::Ident(t)
                        if saw_eq
                            && (t == "HashMap" || t == "HashSet")
                            && punct(k + 1, ':')
                            && punct(k + 2, ':') =>
                    {
                        unordered.insert(name.to_string());
                    }
                    TokKind::Ident(t)
                        if saw_eq && t == "KvPool" && punct(k + 1, ':') && punct(k + 2, ':') =>
                    {
                        pools.insert(name.to_string());
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
}

/// Resolves the receiver name of a `.method(` call at token index `dot`
/// (the `.`): `name.m(…)` or `self.name.m(…)`. Chained/expression
/// receivers resolve to `None`.
fn receiver_name(tokens: &[Token], dot: usize) -> Option<&str> {
    if dot == 0 {
        return None;
    }
    match &tokens[dot - 1].kind {
        TokKind::Ident(name) if name != "self" => Some(name.as_str()),
        _ => None,
    }
}

/// R1 + R5: unordered iteration and float reductions fed by it.
fn run_unordered_rules(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        // Method-call form: `recv.method(` with an unordered receiver.
        if ctx.punct(i, '.') {
            let Some(m) = ctx.ident(i + 1) else { continue };
            if !UNORDERED_METHODS.contains(&m) || !ctx.punct(i + 2, '(') {
                continue;
            }
            let Some(recv) = receiver_name(tokens, i) else {
                continue;
            };
            if !ctx.unordered.contains(recv) {
                continue;
            }
            let line = tokens[i + 1].line;
            if ctx.in_test_span(line) {
                continue;
            }
            let chain = chain_span(ctx, i + 1);
            emit_unordered(ctx, findings, line, recv, m, &chain);
        }
        // Loop form: `for pat in &[mut] recv {` / `for pat in [&]self.recv {`.
        if ctx.ident(i) == Some("for") && ctx.replay_critical() {
            let Some((recv, line)) = for_loop_receiver(ctx, i) else {
                continue;
            };
            if !ctx.unordered.contains(recv) || ctx.in_test_span(line) {
                continue;
            }
            findings.push(ctx.finding(
                line,
                Rule::UnorderedIter,
                format!(
                    "`for … in &{recv}` iterates a HashMap/HashSet in hash order; \
                     replay order must not depend on it (sort first, use \
                     serving::order::drain_sorted, or annotate)"
                ),
            ));
        }
    }
}

/// Matches `for … in &[mut] name {` or `for … in [&]self.name {`
/// starting at the `for` token; returns the receiver name and the line
/// to report. Plain by-value loops (`for x in name {`) are excluded:
/// moving a container out of a binding is the local-`Vec` shape, while
/// the hash-order hazard comes from borrowing a long-lived field.
fn for_loop_receiver<'t>(ctx: &'t FileCtx<'t>, for_idx: usize) -> Option<(&'t str, u32)> {
    let tokens = ctx.tokens;
    // Find `in` at pattern depth 0 within a short window.
    let mut depth = 0i32;
    let mut j = for_idx + 1;
    let limit = (for_idx + 40).min(tokens.len());
    loop {
        if j >= limit {
            return None;
        }
        match &tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Ident(s) if s == "in" && depth == 0 => break,
            TokKind::Punct('{') | TokKind::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    let mut k = j + 1;
    let mut borrowed = false;
    if ctx.punct(k, '&') {
        borrowed = true;
        k += 1;
    }
    if ctx.ident(k) == Some("mut") {
        k += 1;
    }
    if ctx.ident(k) == Some("self") && ctx.punct(k + 1, '.') {
        borrowed = true;
        k += 2;
    }
    if !borrowed {
        return None;
    }
    let name = ctx.ident(k)?;
    // Only the bare-binding form: `recv.iter()`-style is the method
    // path, and `recv.field` sub-expressions are unknown.
    if !ctx.punct(k + 1, '{') {
        return None;
    }
    Some((name, tokens[k].line))
}

/// What the rest of the statement chain after an unordered call says.
struct ChainInfo {
    /// An order-restoring / order-insensitive marker appears.
    ordered: bool,
    /// A float reduction (`sum::<f64>` or `fold`) appears before any
    /// ordering marker.
    float_reduction: Option<&'static str>,
}

/// Scans the statement chain starting at the flagged method ident.
fn chain_span(ctx: &FileCtx<'_>, start: usize) -> ChainInfo {
    let tokens = ctx.tokens;
    let mut info = ChainInfo {
        ordered: false,
        float_reduction: None,
    };
    let mut depth = 0i32;
    let mut brace_depth = 0i32;
    let mut k = start;
    let limit = (start + 300).min(tokens.len());
    while k < limit {
        match &tokens[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') => {
                if depth <= 0 {
                    break; // block starts (for-loop/if body): chain over
                }
                brace_depth += 1;
            }
            TokKind::Punct('}') => {
                brace_depth -= 1;
                if brace_depth < 0 {
                    break;
                }
            }
            TokKind::Punct(';') if depth <= 0 => break,
            TokKind::Ident(s) => {
                if ORDER_MARKERS.contains(&s.as_str()) || BOOL_MARKERS.contains(&s.as_str()) {
                    if info.float_reduction.is_none() {
                        info.ordered = true;
                    }
                    // A sort after the reduction does not unorder it,
                    // but a reduction after a sort is fine — handled by
                    // checking float_reduction first above.
                } else if s == "fold" && info.float_reduction.is_none() && !info.ordered {
                    info.float_reduction = Some("fold");
                } else if s == "sum" && info.float_reduction.is_none() && !info.ordered {
                    // `sum::<f64>()` is order-sensitive; integer sums
                    // (`sum::<u64>()`) are commutative and count as
                    // order-insensitive. Untyped `sum()` stays flagged
                    // as plain R1 (conservative).
                    if ctx.punct(k + 1, ':') && ctx.punct(k + 2, ':') && ctx.punct(k + 3, '<') {
                        match ctx.ident(k + 4) {
                            Some("f64") | Some("f32") => info.float_reduction = Some("sum"),
                            Some(_) => info.ordered = true,
                            None => {}
                        }
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    info
}

fn emit_unordered(
    ctx: &FileCtx<'_>,
    findings: &mut Vec<Finding>,
    line: u32,
    recv: &str,
    method: &str,
    chain: &ChainInfo,
) {
    if let Some(red) = chain.float_reduction {
        findings.push(ctx.finding(
            line,
            Rule::FloatOrder,
            format!(
                "float `{red}` reduction fed by `{recv}.{method}()` iterates in hash \
                 order; float addition is not associative, so the result is \
                 run-dependent (collect + sort first, or annotate)"
            ),
        ));
    }
    if chain.ordered || !ctx.replay_critical() {
        return;
    }
    findings.push(ctx.finding(
        line,
        Rule::UnorderedIter,
        format!(
            "`{recv}.{method}()` iterates a HashMap/HashSet in hash order inside a \
             replay-critical crate; sort or collect into a BTreeMap in the same \
             statement, use serving::order::drain_sorted, or annotate"
        ),
    ));
}

/// R2: wall-clock / ambient entropy.
fn run_entropy_rule(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.entropy_allowed() {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        let TokKind::Ident(s) = &t.kind else { continue };
        let hit = ENTROPY_IDENTS.contains(&s.as_str())
            || (s == "rand" && ctx.punct(i + 1, ':') && ctx.punct(i + 2, ':'));
        if hit {
            findings.push(ctx.finding(
                t.line,
                Rule::Entropy,
                format!(
                    "`{s}` is ambient entropy/wall-clock; simulation state must come \
                     from simcore::SimTime and the seeded simcore rng (or annotate \
                     for reporting-only timing)"
                ),
            ));
        }
    }
}

/// R3: raw KvPool traffic outside the lease table.
fn run_lease_rule(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.pool_allowed() {
        return;
    }
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        // `KvPool::<ctor>` anywhere constructs an unaudited pool.
        if ctx.ident(i) == Some("KvPool") && ctx.punct(i + 1, ':') && ctx.punct(i + 2, ':') {
            let line = tokens[i].line;
            if ctx.in_test_span(line) {
                continue;
            }
            findings.push(
                ctx.finding(
                    line,
                    Rule::LeaseHygiene,
                    "direct `KvPool` construction outside serving::lease / kvcache; engines \
                 must hold pools behind a LeaseTable so the leak detector sees every \
                 allocation"
                        .to_string(),
                ),
            );
        }
        // `pool.mutator(` on a KvPool-typed binding.
        if ctx.punct(i, '.') {
            let Some(m) = ctx.ident(i + 1) else { continue };
            if !POOL_MUTATORS.contains(&m) || !ctx.punct(i + 2, '(') {
                continue;
            }
            let Some(recv) = receiver_name(tokens, i) else {
                continue;
            };
            if !ctx.pools.contains(recv) {
                continue;
            }
            let line = tokens[i + 1].line;
            if ctx.in_test_span(line) {
                continue;
            }
            findings.push(ctx.finding(
                line,
                Rule::LeaseHygiene,
                format!(
                    "`{recv}.{m}()` mutates a raw KvPool outside serving::lease / \
                     kvcache; route the operation through the LeaseTable so leases \
                     stay balanced"
                ),
            ));
        }
    }
}

/// R4: unwrap/expect in the driver's failure-handling files.
fn run_panic_rule(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx.panic_free_file() {
        return;
    }
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        if !ctx.punct(i, '.') {
            continue;
        }
        let Some(m) = ctx.ident(i + 1) else { continue };
        if (m == "unwrap" || m == "expect") && ctx.punct(i + 2, '(') {
            let line = tokens[i + 1].line;
            if ctx.in_test_span(line) {
                continue;
            }
            findings.push(ctx.finding(
                line,
                Rule::Panic,
                format!(
                    "`.{m}()` in a fail-stop-critical file; a panic here takes down \
                     the whole serving run — restructure (let-else/match), count the \
                     anomaly, or debug_assert + annotate"
                ),
            ));
        }
    }
}

/// Allocating calls flagged inside hot functions (R6). Method-call
/// forms; `Vec::new` / `vec!` are matched structurally.
const ALLOC_METHODS: [&str; 3] = ["to_vec", "clone", "collect"];

/// R6: heap allocation inside a `// simlint: hot` function. The hot
/// loop processes millions of events per run; a per-event `Vec` or
/// clone turns into allocator traffic that dominates the profile. Hot
/// functions take caller-owned scratch buffers instead; genuinely cold
/// sub-paths (error/rare branches) carry an audited `allow(R6)`.
fn run_alloc_rule(ctx: &FileCtx<'_>, hot_spans: &[(u32, u32)], findings: &mut Vec<Finding>) {
    if hot_spans.is_empty() {
        return;
    }
    let in_hot = |line: u32| hot_spans.iter().any(|&(a, b)| a <= line && line <= b);
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if !in_hot(line) {
            continue;
        }
        // `Vec::new(` / `Vec::with_capacity(` — fresh heap buffers.
        if ctx.ident(i) == Some("Vec") && ctx.punct(i + 1, ':') && ctx.punct(i + 2, ':') {
            if let Some(ctor) = ctx.ident(i + 3) {
                if ctor == "new" || ctor == "with_capacity" {
                    findings.push(ctx.finding(
                        line,
                        Rule::AllocInHot,
                        format!(
                            "`Vec::{ctor}` allocates inside a `simlint: hot` function; \
                             reuse a scratch buffer owned by the caller, or annotate a \
                             cold branch with allow(R6)"
                        ),
                    ));
                }
            }
        }
        // `vec![…]` — allocation plus per-element init.
        if ctx.ident(i) == Some("vec") && ctx.punct(i + 1, '!') {
            findings.push(
                ctx.finding(
                    line,
                    Rule::AllocInHot,
                    "`vec![…]` allocates inside a `simlint: hot` function; reuse a \
                 scratch buffer owned by the caller, or annotate a cold branch \
                 with allow(R6)"
                        .to_string(),
                ),
            );
        }
        // `.to_vec()` / `.clone()` / `.collect…` — hidden copies.
        if ctx.punct(i, '.') {
            let Some(m) = ctx.ident(i + 1) else { continue };
            if !ALLOC_METHODS.contains(&m) {
                continue;
            }
            let call = ctx.punct(i + 2, '(') || (ctx.punct(i + 2, ':') && ctx.punct(i + 3, ':'));
            if !call {
                continue;
            }
            findings.push(ctx.finding(
                tokens[i + 1].line,
                Rule::AllocInHot,
                format!(
                    "`.{m}()` allocates inside a `simlint: hot` function; reuse a \
                     scratch buffer owned by the caller (mem::take/swap for \
                     ownership moves), or annotate a cold branch with allow(R6)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src)
    }

    const MAP_DECL: &str = "struct S { m: HashMap<u64, u32> }\n";

    #[test]
    fn r1_fires_on_unordered_iteration_in_critical_crate() {
        let src = format!("{MAP_DECL}fn f(s: &S) {{ for (k, _) in s.m.iter() {{ use_(k); }} }}");
        let f = lint("crates/serving/src/x.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnorderedIter);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn r1_silent_when_sorted_in_same_chain() {
        let src = format!(
            "{MAP_DECL}fn f(s: &mut S) {{ let mut v: Vec<_> = \
             s.m.drain().collect::<BTreeMap<_, _>>(); }}"
        );
        assert!(lint("crates/serving/src/x.rs", &src).is_empty());
        let src2 = format!("{MAP_DECL}fn f(s: &S) {{ let n = s.m.keys().count(); }}");
        assert!(lint("crates/serving/src/x.rs", &src2).is_empty());
    }

    #[test]
    fn r1_scoped_to_critical_crates_and_skips_tests() {
        let src = format!("{MAP_DECL}fn f(s: &S) {{ for (k, _) in s.m.iter() {{ u(k); }} }}");
        assert!(lint("crates/workload/src/x.rs", &src).is_empty());
        let test_src = format!(
            "{MAP_DECL}#[cfg(test)]\nmod tests {{ fn f(s: &super::S) {{ \
             for (k, _) in s.m.iter() {{ u(k); }} }} }}"
        );
        assert!(lint("crates/serving/src/x.rs", &test_src).is_empty());
    }

    #[test]
    fn r1_for_in_ref_form() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); \
                   for x in &m { u(x); } }";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnorderedIter);
    }

    #[test]
    fn r2_fires_everywhere_except_allowed_files() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let f = lint("crates/workload/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::Entropy));
        assert!(lint("crates/simcore/src/rng.rs", src).is_empty());
        assert!(lint("crates/bench/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn r3_fires_on_raw_pool_traffic_and_construction() {
        let src = "struct E { pool: KvPool }\nfn f(e: &mut E) { e.pool.free_private(4); }\n\
                   fn g() { let p = KvPool::new(10, 2); }";
        let f = lint("crates/baselines/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::LeaseHygiene));
        // The lease table itself and kvcache are exempt.
        assert!(lint("crates/serving/src/lease.rs", src).is_empty());
        assert!(lint("crates/kvcache/src/pool.rs", src).is_empty());
        // Read-only accessors on a pool binding are fine.
        let ro = "struct E { pool: KvPool }\nfn f(e: &E) -> u64 { e.pool.free_tokens() }";
        assert!(lint("crates/baselines/src/x.rs", ro).is_empty());
    }

    #[test]
    fn r4_fires_only_in_panic_free_files_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(lint("crates/serving/src/driver.rs", src).len(), 1);
        assert!(lint("crates/serving/src/metrics.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(lint("crates/serving/src/driver.rs", test_src).is_empty());
    }

    #[test]
    fn r5_fires_on_float_reductions_from_hash_iterators() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   fn f(s: &S) -> f64 { s.m.values().sum::<f64>() }";
        let f = lint("crates/workload/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::FloatOrder);
        // Integer sums are commutative: no R5 (and count as ordered for R1).
        let int = "struct S { m: HashMap<u64, u64> }\n\
                   fn f(s: &S) -> u64 { s.m.values().sum::<u64>() }";
        assert!(lint("crates/workload/src/x.rs", int).is_empty());
    }

    #[test]
    fn r6_fires_only_inside_hot_functions() {
        let src = "// simlint: hot\n\
                   fn step(out: &mut Vec<u32>) {\n\
                   let v = Vec::new();\n\
                   let w = vec![0u8; 4];\n\
                   let c = out.clone();\n\
                   let t = out.to_vec();\n\
                   let g: Vec<u32> = out.iter().copied().collect();\n\
                   }\n\
                   fn cold() { let v = Vec::new(); let w = x.clone(); }";
        let f = lint("crates/gpusim/src/x.rs", src);
        assert_eq!(f.len(), 5, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::AllocInHot));
        assert_eq!(
            f.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn r6_suppression_and_mem_take_are_clean() {
        let src = "// simlint: hot\n\
                   fn step(&mut self) {\n\
                   let buf = std::mem::take(&mut self.spare);\n\
                   // simlint: allow(R6) reason=\"cold fault-edge branch\"\n\
                   let snapshot = self.plan.clone();\n\
                   }";
        assert!(lint("crates/serving/src/x.rs", src).is_empty());
    }

    #[test]
    fn dangling_hot_marker_is_loud() {
        let src = "// simlint: hot\nconst X: u32 = 3;\n";
        let f = lint("crates/gpusim/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Annotation);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn suppression_works_on_same_and_previous_line() {
        let src = format!(
            "{MAP_DECL}fn f(s: &S) {{\n\
             // simlint: allow(R1) reason=\"order-insensitive counter\"\n\
             for (k, _) in s.m.iter() {{ u(k); }}\n\
             for (k, _) in s.m.iter() {{ u(k); }} // simlint: allow(R1) reason=\"same\"\n\
             }}"
        );
        assert!(lint("crates/serving/src/x.rs", &src).is_empty());
    }

    #[test]
    fn malformed_annotation_is_a_finding_and_suppresses_nothing() {
        let src = format!(
            "{MAP_DECL}fn f(s: &S) {{\n\
             // simlint: allow(R1)\n\
             for (k, _) in s.m.iter() {{ u(k); }}\n}}"
        );
        let f = lint("crates/serving/src/x.rs", &src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].rule, Rule::Annotation);
        assert_eq!(f[1].rule, Rule::UnorderedIter);
    }

    #[test]
    fn unknown_crate_paths_are_treated_as_critical() {
        let src = format!("{MAP_DECL}fn f(s: &S) {{ for (k, _) in s.m.iter() {{ u(k); }} }}");
        assert_eq!(lint("fixtures/r1/violation.rs", &src).len(), 1);
    }
}
