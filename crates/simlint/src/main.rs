//! `cargo run -p simlint [paths…]` — lint the workspace (default) or
//! the given files/directories; exit non-zero on any unsuppressed
//! finding. See the library docs for the rule table and the annotation
//! grammar.

use simlint::{collect_rs_files, lint_source, lint_workspace, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let findings = if args.is_empty() {
        let root = workspace_root();
        match lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("simlint: cannot walk workspace at {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match lint_args(&args) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest when
/// running under cargo, the current directory otherwise.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

/// Lints explicit files/directories; paths are echoed as given (with
/// `/` separators) so fixture goldens are stable.
fn lint_args(args: &[String]) -> std::io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for a in args {
        let p = PathBuf::from(a);
        if p.is_dir() {
            files.extend(collect_rs_files(&p));
        } else {
            files.push(p);
        }
    }
    files.sort();
    files.dedup();
    let mut findings = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f)?;
        let rel = f.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&rel, &src));
    }
    Ok(findings)
}
