//! `cargo run -p simlint [--json] [--changed] [paths…]` — lint the
//! workspace (default) or the given files/directories; exit non-zero
//! on any unsuppressed finding. See the library docs for the rule
//! table and the annotation grammar.
//!
//! Flags:
//! * `--json` — machine-readable output: a JSON array of findings with
//!   stable fingerprints (see [`simlint::render_json`]).
//! * `--changed <files…>` — lint the *whole* workspace (the
//!   interprocedural rules need every file to build the call graph)
//!   but report only findings located in the listed files. This is the
//!   diff-scoped mode `scripts/check.sh lint --changed` drives from
//!   `git diff`.
//!
//! Explicit paths are linted together as one workspace unit, so
//! cross-file taint is visible even on a subset.

use simlint::{collect_rs_files, lint_files, lint_workspace_units, render_json, FileUnit, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut changed = false;
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => json = true,
            "--changed" => changed = true,
            _ => paths.push(a),
        }
    }

    let findings = if changed {
        match lint_changed(&paths) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if paths.is_empty() {
        let root = workspace_root();
        match lint_workspace_units(&root) {
            Ok(units) => lint_files(&units),
            Err(e) => {
                eprintln!("simlint: cannot walk workspace at {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match lint_args(&paths) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    if json {
        print!("{}", render_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        eprintln!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest when
/// running under cargo, the current directory otherwise.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

/// Expands files/directories into one sorted workspace unit list;
/// paths are echoed as given (with `/` separators) so fixture goldens
/// are stable.
fn read_units(args: &[String]) -> std::io::Result<Vec<FileUnit>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for a in args {
        let p = PathBuf::from(a);
        if p.is_dir() {
            files.extend(collect_rs_files(&p));
        } else {
            files.push(p);
        }
    }
    files.sort();
    files.dedup();
    let mut units = Vec::new();
    for f in files {
        units.push(FileUnit {
            rel_path: f.to_string_lossy().replace('\\', "/"),
            src: std::fs::read_to_string(&f)?,
        });
    }
    Ok(units)
}

/// Lints explicit files/directories as one workspace unit.
fn lint_args(args: &[String]) -> std::io::Result<Vec<Finding>> {
    Ok(lint_files(&read_units(args)?))
}

/// Diff-scoped mode: lint the full workspace, report only findings in
/// the named files (matched by path suffix, so both repo-relative and
/// absolute spellings work).
fn lint_changed(args: &[String]) -> std::io::Result<Vec<Finding>> {
    let root = workspace_root();
    let units = lint_workspace_units(&root)?;
    let wanted: Vec<String> = args.iter().map(|a| a.replace('\\', "/")).collect();
    let mut findings = lint_files(&units);
    findings.retain(|f| {
        wanted
            .iter()
            .any(|w| f.file == *w || f.file.ends_with(w) || w.ends_with(&f.file))
    });
    Ok(findings)
}
