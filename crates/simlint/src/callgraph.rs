//! Conservative workspace call graph over the symbol index.
//!
//! With no type information, call resolution is by name, biased toward
//! over-approximation — a spurious edge can at worst demand an audited
//! annotation, while a missed edge would silently unprotect a replay
//! invariant. The resolution rules:
//!
//! * `name(…)` (no receiver) resolves to every *free* fn named `name`.
//! * `recv.name(…)` resolves to every *method* named `name`, on any
//!   type — receivers are untyped, so all candidates stay live.
//! * `Ty::name(…)` resolves to methods named `name` on `Ty`; if no
//!   such method is indexed, it falls back to the union of all free
//!   fns and methods named `name` (the path may be a re-export or a
//!   trait fn called through the type).
//!
//! Functions inside `#[cfg(test)]` spans are excluded as callers *and*
//! as callees: test-only edges must not taint production entrypoints,
//! and the test fns themselves are outside the replay perimeter.
//!
//! Call sites are attributed to the innermost containing fn, so a
//! closure inside `Fleet::run_opts` counts as `run_opts` calling its
//! contents — exactly the attribution the barrier rule needs.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{TokKind, Token};
use crate::symbols::SymbolIndex;

/// Rust keywords (and call-position words) that can precede `(` without
/// being a call: `if x …(`, `match (…)`, `return (…)`, etc.
const NON_CALL_WORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "trait", "struct", "enum", "union", "where", "pub",
    "use", "mod", "unsafe", "dyn", "box", "async", "await", "static", "const", "type", "true",
    "false",
];

/// The workspace call graph: forward and reverse adjacency between
/// indices into [`SymbolIndex::fns`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `calls[f]` = deduped `(callee, line)` pairs, in source order of
    /// first occurrence.
    pub calls: Vec<Vec<(usize, u32)>>,
    /// `callers[f]` = sorted, deduped callers of `f`.
    pub callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from the index plus each unit's token stream
    /// (same order the index was scanned in).
    pub fn build(idx: &SymbolIndex, unit_tokens: &[&[Token]]) -> CallGraph {
        let n = idx.fns.len();
        // Candidate tables over non-test fns only.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut qualified: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (fi, f) in idx.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            match &f.self_ty {
                None => free.entry(f.name.as_str()).or_default().push(fi),
                Some(ty) => {
                    methods.entry(f.name.as_str()).or_default().push(fi);
                    qualified
                        .entry((ty.as_str(), f.name.as_str()))
                        .or_default()
                        .push(fi);
                }
            }
        }

        let mut calls: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        let mut seen: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (u, tokens) in unit_tokens.iter().enumerate() {
            for i in 0..tokens.len() {
                let TokKind::Ident(name) = &tokens[i].kind else {
                    continue;
                };
                if tokens.get(i + 1).map(|t| &t.kind) != Some(&TokKind::Punct('(')) {
                    continue;
                }
                if NON_CALL_WORDS.contains(&name.as_str()) {
                    continue;
                }
                // `fn name(` is a declaration, not a call.
                if i > 0 && tokens[i - 1].kind == TokKind::Ident("fn".into()) {
                    continue;
                }
                let Some(caller) = idx.innermost_at(u, i) else {
                    continue;
                };
                if idx.fns[caller].in_test {
                    continue;
                }
                let is_method = i > 0 && tokens[i - 1].kind == TokKind::Punct('.');
                let qual_ty = if i >= 3
                    && tokens[i - 1].kind == TokKind::Punct(':')
                    && tokens[i - 2].kind == TokKind::Punct(':')
                {
                    match &tokens[i - 3].kind {
                        TokKind::Ident(t) => Some(t.as_str()),
                        _ => None,
                    }
                } else {
                    None
                };
                let empty: Vec<usize> = Vec::new();
                let targets: &Vec<usize> = if is_method {
                    methods.get(name.as_str()).unwrap_or(&empty)
                } else if let Some(ty) = qual_ty {
                    match qualified.get(&(ty, name.as_str())) {
                        Some(v) => v,
                        // Fall back to anything by this name: the path
                        // head may be a module or re-export.
                        None => {
                            for &t in free
                                .get(name.as_str())
                                .unwrap_or(&empty)
                                .iter()
                                .chain(methods.get(name.as_str()).unwrap_or(&empty))
                            {
                                if t != caller && seen[caller].insert(t) {
                                    calls[caller].push((t, tokens[i].line));
                                }
                            }
                            continue;
                        }
                    }
                } else {
                    free.get(name.as_str()).unwrap_or(&empty)
                };
                for &t in targets {
                    if t != caller && seen[caller].insert(t) {
                        calls[caller].push((t, tokens[i].line));
                    }
                }
            }
        }

        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (c, edges) in calls.iter().enumerate() {
            for &(t, _) in edges {
                callers[t].push(c);
            }
        }
        for v in &mut callers {
            v.sort_unstable();
            v.dedup();
        }
        CallGraph { calls, callers }
    }

    /// Backward reachability: every fn that can transitively reach one
    /// of `seeds` through the call graph (seeds included).
    pub fn reaches(&self, seeds: &[usize]) -> Vec<bool> {
        let mut hit = vec![false; self.callers.len()];
        let mut work: Vec<usize> = Vec::new();
        for &s in seeds {
            if !hit[s] {
                hit[s] = true;
                work.push(s);
            }
        }
        while let Some(f) = work.pop() {
            for &c in &self.callers[f] {
                if !hit[c] {
                    hit[c] = true;
                    work.push(c);
                }
            }
        }
        hit
    }

    /// Shortest forward path (BFS, ties by lowest fn index) from `from`
    /// to any fn in `targets`, restricted to fns where `within` is
    /// true. Returns the fn-index path including both endpoints.
    pub fn path_to(&self, from: usize, targets: &[bool], within: &[bool]) -> Vec<usize> {
        if targets[from] {
            return vec![from];
        }
        let mut parent: Vec<Option<usize>> = vec![None; self.calls.len()];
        let mut queue = std::collections::VecDeque::new();
        parent[from] = Some(from);
        queue.push_back(from);
        while let Some(f) = queue.pop_front() {
            let mut next: Vec<usize> = self.calls[f].iter().map(|&(t, _)| t).collect();
            next.sort_unstable();
            for t in next {
                if parent[t].is_some() || !within[t] {
                    continue;
                }
                parent[t] = Some(f);
                if targets[t] {
                    let mut path = vec![t];
                    let mut cur = t;
                    while cur != from {
                        cur = parent[cur].unwrap_or(from);
                        path.push(cur);
                    }
                    path.reverse();
                    return path;
                }
                queue.push_back(t);
            }
        }
        vec![from]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::SymbolIndex;

    fn graph_of(srcs: &[(&str, &[(u32, u32)])]) -> (SymbolIndex, CallGraph) {
        let lexed: Vec<_> = srcs.iter().map(|(s, _)| lex(s)).collect();
        let mut idx = SymbolIndex::default();
        for (u, (_, spans)) in srcs.iter().enumerate() {
            idx.scan_unit(u, &lexed[u].tokens, spans);
        }
        let toks: Vec<&[Token]> = lexed.iter().map(|l| l.tokens.as_slice()).collect();
        let g = CallGraph::build(&idx, &toks);
        (idx, g)
    }

    fn fn_idx(idx: &SymbolIndex, name: &str) -> usize {
        idx.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn free_method_and_qualified_calls_resolve() {
        let src = "fn leaf() {}\n\
                   impl Widget { fn leaf(&self) {} fn spin(&self) { self.leaf(); } }\n\
                   fn top(w: &Widget) { leaf(); w.spin(); Widget::leaf(&w); }\n";
        let (idx, g) = graph_of(&[(src, &[])]);
        let top = fn_idx(&idx, "top");
        let callees: Vec<&str> = g.calls[top]
            .iter()
            .map(|&(t, _)| idx.fns[t].name.as_str())
            .collect();
        // `leaf()` → free leaf; `w.spin()` → method spin;
        // `Widget::leaf` → the Widget method only (qualified hit).
        assert_eq!(callees, vec!["leaf", "spin", "leaf"]);
        let free_leaf = fn_idx(&idx, "leaf");
        assert!(g.calls[top].iter().any(|&(t, _)| t == free_leaf));
    }

    #[test]
    fn method_calls_fan_out_to_all_same_named_methods() {
        let src = "impl A { fn probe(&self) {} }\n\
                   impl B { fn probe(&self) {} }\n\
                   fn go(a: &A) { a.probe(); }\n";
        let (idx, g) = graph_of(&[(src, &[])]);
        let go = fn_idx(&idx, "go");
        // Untyped receiver: both A::probe and B::probe are candidates.
        assert_eq!(g.calls[go].len(), 2);
    }

    #[test]
    fn taint_does_not_propagate_through_cfg_test_edges() {
        // `timer` is entropy-ish; only the test fn calls it. The
        // production entrypoint calls a clean helper. Taint from
        // `timer` must reach neither `clean` nor `entry`.
        let src = "fn timer() {}\n\
                   fn clean() {}\n\
                   fn entry() { clean(); }\n\
                   fn bench_it() { timer(); entry(); }\n";
        // Line 4 (`bench_it`) is inside a cfg(test) span.
        let (idx, g) = graph_of(&[(src, &[(4, 4)])]);
        let tainted = g.reaches(&[fn_idx(&idx, "timer")]);
        assert!(tainted[fn_idx(&idx, "timer")]);
        assert!(!tainted[fn_idx(&idx, "bench_it")], "test fn is no caller");
        assert!(!tainted[fn_idx(&idx, "entry")]);
        assert!(!tainted[fn_idx(&idx, "clean")]);
        // And test fns are not callees either: entry() from bench_it
        // created no edge.
        assert!(g.callers[fn_idx(&idx, "entry")].is_empty());
    }

    #[test]
    fn backward_taint_crosses_units() {
        let a = "pub fn stamp() { helper_clock(); }\nfn helper_clock() {}\n";
        let b = "impl Driver { fn run_to_end(&mut self) { stamp(); } }\n";
        let (idx, g) = graph_of(&[(a, &[]), (b, &[])]);
        let tainted = g.reaches(&[fn_idx(&idx, "helper_clock")]);
        assert!(tainted[fn_idx(&idx, "stamp")]);
        assert!(tainted[fn_idx(&idx, "run_to_end")]);
        let within = vec![true; idx.fns.len()];
        let mut targets = vec![false; idx.fns.len()];
        targets[fn_idx(&idx, "helper_clock")] = true;
        let path = g.path_to(fn_idx(&idx, "run_to_end"), &targets, &within);
        let names: Vec<&str> = path.iter().map(|&f| idx.fns[f].name.as_str()).collect();
        assert_eq!(names, vec!["run_to_end", "stamp", "helper_clock"]);
    }

    #[test]
    fn declarations_and_keywords_are_not_call_sites() {
        let src = "fn maker() { if (1 > 0) { let x = (2, 3); } }\nfn other() {}\n";
        let (idx, g) = graph_of(&[(src, &[])]);
        assert!(g.calls[fn_idx(&idx, "maker")].is_empty());
        assert!(g.callers[fn_idx(&idx, "other")].is_empty());
    }
}
