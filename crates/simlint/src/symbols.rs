//! Workspace symbol index: function, impl-method, and trait-method
//! extraction over the flat token stream.
//!
//! The index is the foundation of the interprocedural rules (R7
//! entropy-taint, R8 barrier-discipline). It records, for every bodied
//! `fn` in every file handed to the linter: its name, the `Self` type
//! and trait it is implemented for (when inside an `impl`/`trait`
//! block), its declaration line, the token range of its body, and
//! whether it lives inside a `#[cfg(test)]` span.
//!
//! Like the rest of simlint this is a heuristic scan, not a parse. A
//! single forward pass keeps a stack of brace frames; `impl`, `trait`,
//! and `fn` headers are recognised by scanning from the keyword to the
//! first `{` or `;` at bracket depth zero (angle brackets are tracked
//! so `fn f<T: Ord>(…) -> Vec<T> {` finds the right brace; `->` is
//! special-cased since `>` lexes as a bare punct). The scan is total:
//! malformed code degrades into missed or truncated symbols, never a
//! panic — and missing a symbol makes the dependent rules *more*
//! conservative for R8 (an unknown function is not barrier-scoped) and
//! less complete for R7, the usual static-analysis trade.

use crate::lexer::{TokKind, Token};

/// One bodied function found in the scanned files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSym {
    /// Index of the [`crate::FileUnit`] this fn lives in.
    pub unit: usize,
    /// The function's name.
    pub name: String,
    /// `Self` type when declared inside `impl Ty`, `impl Tr for Ty`, or
    /// a `trait Tr` block (the trait itself then stands in as `Self`).
    pub self_ty: Option<String>,
    /// Trait name when inside `impl Tr for Ty` or `trait Tr { … }`.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body's `{` and its matching `}` (inclusive)
    /// within the unit's token stream.
    pub body: (usize, usize),
    /// True when the declaration line falls inside a `#[cfg(test)]`
    /// span; test fns neither give nor receive taint.
    pub in_test: bool,
}

impl FnSym {
    /// `Ty::name` when the fn has a self type, else just `name` — the
    /// form used in finding messages.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// All functions of a file set, in scan order (unit order, then
/// position within the unit).
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Every bodied fn found.
    pub fns: Vec<FnSym>,
}

/// A brace frame on the scan stack.
enum Frame {
    /// Body of `fns[idx]`; closing it completes the symbol.
    FnBody(usize),
    /// An `impl`/`trait` block providing method context.
    ImplBlock {
        self_ty: Option<String>,
        trait_name: Option<String>,
    },
    /// Any other `{ … }` (struct, match, closure, plain block).
    Other,
}

impl SymbolIndex {
    /// Scans one unit's tokens, appending its fns to the index.
    /// `test_spans` are the unit's `#[cfg(test)]` line ranges.
    pub fn scan_unit(&mut self, unit: usize, tokens: &[Token], test_spans: &[(u32, u32)]) {
        let in_test = |line: u32| test_spans.iter().any(|&(lo, hi)| line >= lo && line <= hi);
        let mut stack: Vec<Frame> = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            match &tokens[i].kind {
                TokKind::Ident(kw) if kw == "impl" => {
                    let (end, opened, self_ty, trait_name) = parse_impl_header(tokens, i + 1);
                    if opened {
                        stack.push(Frame::ImplBlock {
                            self_ty,
                            trait_name,
                        });
                        i = end + 1;
                    } else {
                        i = end;
                    }
                }
                TokKind::Ident(kw) if kw == "trait" => {
                    // `trait Tr: Super { … }`: methods inside are
                    // indexed with the trait as both self type and
                    // trait name (default bodies are real code).
                    let name = ident_at(tokens, i + 1).map(str::to_string);
                    let (end, opened) = find_block_open(tokens, i + 1);
                    if opened && name.is_some() {
                        stack.push(Frame::ImplBlock {
                            self_ty: name.clone(),
                            trait_name: name,
                        });
                        i = end + 1;
                    } else {
                        i = end.max(i + 1);
                    }
                }
                TokKind::Ident(kw) if kw == "fn" => {
                    let Some(name) = ident_at(tokens, i + 1) else {
                        i += 1;
                        continue;
                    };
                    let line = tokens[i].line;
                    let (end, opened) = find_block_open(tokens, i + 2);
                    if opened {
                        let (self_ty, trait_name) = innermost_impl(&stack);
                        let idx = self.fns.len();
                        self.fns.push(FnSym {
                            unit,
                            name: name.to_string(),
                            self_ty,
                            trait_name,
                            line,
                            body: (end, tokens.len().saturating_sub(1)),
                            in_test: in_test(line),
                        });
                        stack.push(Frame::FnBody(idx));
                    }
                    i = end + 1;
                }
                TokKind::Punct('{') => {
                    stack.push(Frame::Other);
                    i += 1;
                }
                TokKind::Punct('}') => {
                    if let Some(Frame::FnBody(idx)) = stack.pop() {
                        self.fns[idx].body.1 = i;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Index (into [`SymbolIndex::fns`]) of the innermost fn whose body
    /// contains token `tok` of `unit`, or `None` for top-level tokens.
    pub fn innermost_at(&self, unit: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.unit == unit && f.body.0 < tok && tok < f.body.1)
            .max_by_key(|(_, f)| f.body.0)
            .map(|(i, _)| i)
    }
}

/// Most deeply nested impl/trait context on the frame stack.
fn innermost_impl(stack: &[Frame]) -> (Option<String>, Option<String>) {
    for frame in stack.iter().rev() {
        if let Frame::ImplBlock {
            self_ty,
            trait_name,
        } = frame
        {
            return (self_ty.clone(), trait_name.clone());
        }
    }
    (None, None)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Scans from `start` (just past a `fn name` or `trait Name` header
/// prefix) to the first `{` or `;` at bracket depth zero. Returns the
/// index of that token and whether it was an opening brace. Tracks
/// `(`/`[` nesting and angle brackets (`->` does not close an angle).
/// Bails after a bounded window so a pathological file cannot wedge the
/// scan — the fn is then simply not indexed.
fn find_block_open(tokens: &[Token], start: usize) -> (usize, bool) {
    let mut paren = 0i32;
    let mut angle = 0i32;
    let limit = (start + 4096).min(tokens.len());
    let mut j = start;
    while j < limit {
        match &tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                // `->` / `=>` lex as two puncts; their `>` is not an
                // angle close.
                let arrow = j > 0
                    && matches!(
                        tokens[j - 1].kind,
                        TokKind::Punct('-') | TokKind::Punct('=')
                    );
                if !arrow {
                    angle -= 1;
                }
            }
            TokKind::Punct('{') if paren <= 0 && angle <= 0 => return (j, true),
            TokKind::Punct(';') if paren <= 0 && angle <= 0 => return (j, false),
            _ => {}
        }
        j += 1;
    }
    (j, false)
}

/// Parses an `impl` header starting just past the `impl` keyword:
/// `impl<T> Ty<T> { …`, `impl Tr for Ty { …`, `impl a::b::Ty { …`.
/// Returns `(index of '{' or scan end, found_brace, self_ty,
/// trait_name)`. The self type / trait name are the *last* identifier
/// of each depth-zero path segment group — `a::b::Ty` resolves to `Ty`,
/// generics inside `<…>` are ignored.
fn parse_impl_header(
    tokens: &[Token],
    start: usize,
) -> (usize, bool, Option<String>, Option<String>) {
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut groups: Vec<Vec<String>> = vec![Vec::new()];
    let mut collecting = true;
    let limit = (start + 4096).min(tokens.len());
    let mut j = start;
    while j < limit {
        match &tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                let arrow = j > 0
                    && matches!(
                        tokens[j - 1].kind,
                        TokKind::Punct('-') | TokKind::Punct('=')
                    );
                if !arrow {
                    angle -= 1;
                }
            }
            TokKind::Punct('{') if paren <= 0 && angle <= 0 => {
                return (j, true, finish(&mut groups), trait_of(&groups));
            }
            TokKind::Punct(';') if paren <= 0 && angle <= 0 => {
                return (j, false, None, None);
            }
            TokKind::Ident(s) if paren <= 0 && angle <= 0 && collecting => {
                if s == "for" {
                    groups.push(Vec::new());
                } else if s == "where" {
                    collecting = false;
                } else if !matches!(
                    s.as_str(),
                    "unsafe" | "const" | "dyn" | "mut" | "ref" | "crate" | "super" | "self"
                ) {
                    if let Some(g) = groups.last_mut() {
                        g.push(s.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    (j, false, None, None)
}

/// Self type of a parsed impl header: with a `for` the second group is
/// the implementing type, otherwise the first (inherent impl).
fn finish(groups: &mut [Vec<String>]) -> Option<String> {
    let g = if groups.len() >= 2 {
        &groups[1]
    } else {
        &groups[0]
    };
    g.last().cloned()
}

/// Trait name: only present for `impl Tr for Ty`.
fn trait_of(groups: &[Vec<String>]) -> Option<String> {
    if groups.len() >= 2 {
        groups[0].last().cloned()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> SymbolIndex {
        scan_with_tests(src, &[])
    }

    fn scan_with_tests(src: &str, test_spans: &[(u32, u32)]) -> SymbolIndex {
        let lexed = lex(src);
        let mut idx = SymbolIndex::default();
        idx.scan_unit(0, &lexed.tokens, test_spans);
        idx
    }

    #[test]
    fn free_fns_and_methods_are_indexed() {
        let src = "fn free() { helper(); }\n\
                   impl Driver {\n    pub fn run_to_end(&mut self) -> u64 { 0 }\n}\n\
                   impl Scheduler for MuxWise {\n    fn on_arrival(&mut self) {}\n}\n";
        let idx = scan(src);
        let names: Vec<(String, Option<String>, Option<String>)> = idx
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone(), f.trait_name.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, None),
                ("run_to_end".into(), Some("Driver".into()), None),
                (
                    "on_arrival".into(),
                    Some("MuxWise".into()),
                    Some("Scheduler".into())
                ),
            ]
        );
        assert_eq!(idx.fns[0].line, 1);
        assert_eq!(idx.fns[1].line, 3);
    }

    #[test]
    fn generics_paths_and_where_clauses_do_not_confuse_headers() {
        let src = "impl<K: Ord, V> Table<K, V> where K: Clone {\n\
                       fn get<Q: Ord>(&self, q: &Q) -> Option<&V> { None }\n\
                   }\n\
                   impl fleet::Router for balancer::JoinShortest {\n\
                       fn pick(&mut self, n: usize) -> usize { n - 1 }\n\
                   }\n\
                   fn arrowed() -> Vec<u32> { Vec::new() }\n";
        let idx = scan(src);
        assert_eq!(idx.fns[0].self_ty.as_deref(), Some("Table"));
        assert_eq!(idx.fns[0].trait_name, None);
        assert_eq!(idx.fns[1].self_ty.as_deref(), Some("JoinShortest"));
        assert_eq!(idx.fns[1].trait_name.as_deref(), Some("Router"));
        assert_eq!(idx.fns[2].name, "arrowed");
        assert_eq!(idx.fns[2].self_ty, None);
    }

    #[test]
    fn bodyless_fns_are_skipped_and_trait_defaults_kept() {
        let src = "trait Scheduler {\n\
                       fn on_arrival(&mut self, id: u64);\n\
                       fn on_tick(&mut self) { let _ = 1; }\n\
                   }\n";
        let idx = scan(src);
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "on_tick");
        assert_eq!(idx.fns[0].self_ty.as_deref(), Some("Scheduler"));
        assert_eq!(idx.fns[0].trait_name.as_deref(), Some("Scheduler"));
    }

    #[test]
    fn nested_fns_and_innermost_lookup() {
        let src = "fn outer() {\n    fn inner() { probe(); }\n    inner();\n}\n";
        let idx = scan(src);
        assert_eq!(idx.fns.len(), 2);
        let lexed = lex(src);
        // Find the `probe` token and confirm it attributes to `inner`.
        let probe = lexed
            .tokens
            .iter()
            .position(|t| t.kind == TokKind::Ident("probe".into()))
            .unwrap();
        let owner = idx.innermost_at(0, probe).unwrap();
        assert_eq!(idx.fns[owner].name, "inner");
        // The later `inner()` call site attributes to `outer`.
        let call = lexed
            .tokens
            .iter()
            .rposition(|t| t.kind == TokKind::Ident("inner".into()))
            .unwrap();
        let owner = idx.innermost_at(0, call).unwrap();
        assert_eq!(idx.fns[owner].name, "outer");
    }

    #[test]
    fn test_spans_mark_fns_in_test() {
        let src = "fn prod() {}\nfn testish() { prod(); }\n";
        let idx = scan_with_tests(src, &[(2, 2)]);
        assert!(!idx.fns[0].in_test);
        assert!(idx.fns[1].in_test);
    }

    #[test]
    fn closures_and_match_blocks_do_not_break_body_ranges() {
        let src = "fn f(v: &[u32]) -> u32 {\n\
                       let g = |x: u32| -> u32 { x + 1 };\n\
                       match v.first() { Some(x) => g(*x), None => 0 }\n\
                   }\n\
                   fn h() {}\n";
        let idx = scan(src);
        assert_eq!(idx.fns.len(), 2);
        let lexed = lex(src);
        // `h`'s body must start after `f`'s body ends.
        assert!(idx.fns[0].body.1 < idx.fns[1].body.0);
        assert!(idx.fns[1].body.1 < lexed.tokens.len());
    }

    #[test]
    fn scan_is_total_on_malformed_source() {
        // Unbalanced braces, fn without a body, stray impl — no panics.
        let _ = scan("fn broken( {");
        let _ = scan("impl {{{{");
        let _ = scan("fn x(); impl T for");
        let _ = scan("} } } fn after_unbalanced() {}");
    }
}
