//! The GPU execution engine: groups, green contexts, kernels, contention.
//!
//! ## Execution model
//!
//! * A **group** is a set of GPUs running in lockstep (a tensor-parallel
//!   rank group). Work items describe per-GPU cost, so a group executes
//!   like one logical GPU.
//! * A **context** is a green-context SM partition inside a group. Each
//!   context owns a FIFO kernel queue (CUDA-stream semantics: only the
//!   head runs).
//! * Execution is **processor sharing**: between events, every running
//!   kernel progresses at a constant speed in `(0, 1]` of its solo rate.
//!   Speeds change only when the running set changes, so the simulation
//!   advances from boundary to boundary exactly.
//!
//! ## Contention ground truth
//!
//! A kernel's solo duration is `max(flops/compute_rate, bytes/mem_rate) +
//! fixed`. Its average bandwidth demand is `bytes / solo`. When co-running
//! kernels in one group together demand more than HBM peak, grants are
//! assigned by weighted water-filling (weight = achievable bandwidth of
//! the kernel's SM share) and a kernel's speed is `grant / demand`.
//! On top, a deterministic **interference residual** (hash of the
//! configuration, scaled by the co-runners' memory pressure and capped by
//! [`crate::GpuSpec::contention_residual_max`]) reproduces the
//! configuration-dependent, hard-to-predict slowdowns of Fig. 11.
//! Schedulers must discover this through profiling — the residual is not
//! exposed.

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};

use crate::link::{LinkId, Links, TransferId};
use crate::spec::{ClusterSpec, GpuSpec};
use crate::work::WorkItem;

/// Identifies a lockstep GPU group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub(crate) usize);

/// Identifies a green context within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub(crate) usize);

/// Identifies a submitted kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub(crate) usize);

#[derive(Debug)]
struct Ctx {
    sms: u32,
    queue: VecDeque<KernelId>,
    /// Contexts cannot run kernels before this (reconfiguration cost).
    available_at: SimTime,
    created_at: SimTime,
    busy: SimDuration,
    alive: bool,
}

#[derive(Debug)]
struct Group {
    gpus: Vec<u32>,
    ctxs: Vec<Ctx>,
    created_at: SimTime,
    /// Integrated `sm_share × quality × dt` for utilization reporting.
    util_accum: f64,
    accounted_from: SimTime,
    alive: bool,
    /// Cached `(kernel, speed)` pairs for the current running set, in
    /// context-index order. Speeds are a pure function of the running-set
    /// configuration (membership, SM sizes, degradation), so the cache is
    /// bit-identical to recomputing; it is rebuilt lazily whenever
    /// `speeds_dirty` is set by a mutation that can change the set.
    speeds: Vec<(KernelId, f64)>,
    speeds_dirty: bool,
}

/// Reusable buffers for the speed recomputation, so the per-event hot
/// path allocates nothing once warmed up.
#[derive(Debug, Default)]
struct SpeedScratch {
    running: Vec<KernelId>,
    demands: Vec<f64>,
    weights: Vec<f64>,
    grants: Vec<f64>,
    satisfied: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelState {
    Queued,
    Running,
    Done,
    Cancelled,
}

#[derive(Debug)]
struct Kernel {
    group: GroupId,
    ctx: CtxId,
    work: WorkItem,
    tag: u64,
    ready_at: SimTime,
    state: KernelState,
    started_at: SimTime,
    /// Solo execution time in seconds on this kernel's context.
    solo_secs: f64,
    /// Average HBM bandwidth demand at full speed, bytes/s per GPU.
    bw_demand: f64,
    /// Compute-time fraction of the solo duration (1.0 = fully
    /// compute-bound); used for utilization accounting.
    comp_frac: f64,
    /// Fraction of the work remaining, 1.0 → 0.0.
    remaining: f64,
}

/// Kernel storage with a sliding base: retired kernels at the front of
/// the slab are reclaimed in batches, so the table stays O(live) for
/// arbitrarily long runs instead of growing — and re-copying on every
/// capacity doubling — with each submission. `KernelId`s are stable
/// (an id is `base + slab index`), so context queues, speed caches,
/// and drained completion pairs are unaffected by compaction.
#[derive(Debug)]
struct KernelTable {
    base: usize,
    slab: Vec<Kernel>,
}

/// Compaction is attempted only past this slab length (keeps the
/// prefix walk off short-lived simulators entirely).
const COMPACT_MIN_LEN: usize = 128;
/// Minimum retired prefix worth a memmove of the live tail.
const COMPACT_MIN_PREFIX: usize = 64;

impl KernelTable {
    fn new() -> KernelTable {
        KernelTable {
            base: 0,
            slab: Vec::new(),
        }
    }

    /// The id the next pushed kernel will receive.
    #[inline]
    fn next_id(&self) -> KernelId {
        KernelId(self.base + self.slab.len())
    }

    #[inline]
    fn push(&mut self, k: Kernel) {
        self.slab.push(k);
    }

    // simlint: hot
    #[inline]
    fn get(&self, id: KernelId) -> &Kernel {
        &self.slab[id.0 - self.base]
    }

    // simlint: hot
    #[inline]
    fn get_mut(&mut self, id: KernelId) -> &mut Kernel {
        &mut self.slab[id.0 - self.base]
    }

    /// Reclaims the retired (`Done`/`Cancelled`) prefix in batches. The
    /// drain memmoves only the few live kernels at the tail, so total
    /// copy traffic over a run is bounded by live-set size × number of
    /// compactions — kilobytes where unbounded growth copied megabytes.
    // simlint: hot
    fn compact(&mut self) {
        if self.slab.len() < COMPACT_MIN_LEN {
            return;
        }
        let retired = self
            .slab
            .iter()
            .take_while(|k| matches!(k.state, KernelState::Done | KernelState::Cancelled))
            .count();
        if retired >= COMPACT_MIN_PREFIX {
            self.slab.drain(..retired);
            self.base += retired;
        }
    }
}

/// A hardware degradation applied to the simulator for a fault window
/// (see [`GpuSim::apply_degradation`]).
///
/// Fractions follow the same convention as `serving::faults`: `fraction`
/// is the share of the resource *lost*, `bw_fraction` the share
/// *remaining*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HwDegradation {
    /// A slice of one GPU's SMs goes offline.
    SmOffline {
        /// The affected GPU index.
        gpu: u32,
        /// Fraction of SMs lost, in `[0, 1)`.
        fraction: f64,
    },
    /// One GPU's HBM runs at a fraction of nominal bandwidth.
    HbmBandwidth {
        /// The affected GPU index.
        gpu: u32,
        /// Remaining bandwidth fraction, in `(0, 1]`.
        bw_fraction: f64,
    },
    /// One NVLink link runs at a fraction of nominal bandwidth.
    NvlinkBandwidth {
        /// The affected link index (taken modulo the created links; a
        /// no-op on servers without links).
        link: usize,
        /// Remaining bandwidth fraction, in `(0, 1]`.
        bw_fraction: f64,
    },
    /// Every kernel runs `mult`× slower (driver stutter, thermal
    /// throttle).
    KernelSlowdown {
        /// Slowdown multiplier, `>= 1`.
        mult: f64,
    },
}

/// Active degradation multipliers, all `1.0` when healthy. Kept out of
/// the hot path entirely while `active` is false so fault-free runs are
/// bit-identical to a build without fault support.
#[derive(Debug)]
struct DegradeState {
    /// Per-GPU remaining SM fraction.
    sm: Vec<f64>,
    /// Per-GPU remaining HBM bandwidth fraction.
    hbm: Vec<f64>,
    /// Global kernel slowdown multiplier.
    mult: f64,
    active: bool,
}

impl DegradeState {
    fn healthy(num_gpus: u32) -> DegradeState {
        DegradeState {
            sm: vec![1.0; num_gpus as usize],
            hbm: vec![1.0; num_gpus as usize],
            mult: 1.0,
            active: false,
        }
    }
}

/// The GPU server simulator. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct GpuSim {
    spec: GpuSpec,
    num_gpus: u32,
    now: SimTime,
    groups: Vec<Group>,
    kernels: KernelTable,
    completed: Vec<(KernelId, u64)>,
    links: Links,
    degrade: DegradeState,
    speed_scratch: SpeedScratch,
    /// Fail-stop state per GPU. Deliberately *not* part of
    /// [`DegradeState`]: degradation is recomputed from scratch at every
    /// fault boundary ([`GpuSim::clear_degradation`]), while a dead GPU
    /// stays dead until [`GpuSim::recover_gpu`]. All-false on healthy
    /// runs, keeping the hot path untouched.
    dead: Vec<bool>,
    /// Cached `dead.iter().any()` so the healthy hot path never scans
    /// the per-GPU vector (updated by fail/recover only).
    any_dead: bool,
    /// Boundary events processed (kernel starts/completions, link
    /// completions) — pure telemetry for throughput reporting; never
    /// feeds simulation state or replay-visible output.
    events: u64,
}

/// Minimum meaningful solo duration; protects against zero-work kernels.
const MIN_SOLO_SECS: f64 = 1e-9;
/// Remaining-fraction threshold below which a kernel is complete.
const DONE_EPS: f64 = 1e-9;

impl GpuSim {
    /// Creates a simulator for `num_gpus` identical GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn new(spec: GpuSpec, num_gpus: u32, nvlink_gbs: f64) -> GpuSim {
        assert!(num_gpus > 0, "need at least one GPU");
        GpuSim {
            spec,
            num_gpus,
            now: SimTime::ZERO,
            groups: Vec::new(),
            kernels: KernelTable::new(),
            completed: Vec::new(),
            links: Links::new(nvlink_gbs),
            degrade: DegradeState::healthy(num_gpus),
            speed_scratch: SpeedScratch::default(),
            dead: vec![false; num_gpus as usize],
            any_dead: false,
            events: 0,
        }
    }

    /// Creates a simulator from a [`ClusterSpec`].
    pub fn from_cluster(cluster: &ClusterSpec) -> GpuSim {
        GpuSim::new(cluster.gpu.clone(), cluster.num_gpus, cluster.nvlink_gbs)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total boundary events processed since construction — telemetry
    /// for events/wall-second reporting (never replay-visible).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// The GPU model simulated.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Number of GPUs in the server.
    pub fn num_gpus(&self) -> u32 {
        self.num_gpus
    }

    /// Creates a lockstep group over the given GPU indices.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is empty or contains an out-of-range index.
    pub fn create_group(&mut self, gpus: Vec<u32>) -> GroupId {
        assert!(!gpus.is_empty(), "empty group");
        assert!(
            gpus.iter().all(|&g| g < self.num_gpus),
            "GPU index out of range"
        );
        self.groups.push(Group {
            gpus,
            ctxs: Vec::new(),
            created_at: self.now,
            util_accum: 0.0,
            accounted_from: self.now,
            alive: true,
            speeds: Vec::new(),
            speeds_dirty: true,
        });
        GroupId(self.groups.len() - 1)
    }

    /// Destroys a group.
    ///
    /// # Panics
    ///
    /// Panics if any kernel is still queued or running on the group.
    pub fn destroy_group(&mut self, group: GroupId) {
        let g = &mut self.groups[group.0];
        assert!(
            g.ctxs.iter().all(|c| c.queue.is_empty()),
            "destroying group with pending kernels"
        );
        g.alive = false;
        g.speeds_dirty = true;
        for c in &mut g.ctxs {
            c.alive = false;
        }
    }

    /// Creates a green context with `sms` SMs inside a group.
    ///
    /// # Panics
    ///
    /// Panics if `sms` is zero, exceeds the SM count, or would
    /// oversubscribe the group's SMs across live contexts.
    pub fn set_context(&mut self, group: GroupId, sms: u32) -> CtxId {
        assert!(sms > 0 && sms <= self.spec.sm_count, "bad SM count {sms}");
        let g = &mut self.groups[group.0];
        assert!(g.alive, "group destroyed");
        let in_use: u32 = g.ctxs.iter().filter(|c| c.alive).map(|c| c.sms).sum();
        assert!(
            in_use + sms <= self.spec.sm_count,
            "SM oversubscription: {in_use} + {sms} > {}",
            self.spec.sm_count
        );
        g.ctxs.push(Ctx {
            sms,
            queue: VecDeque::new(),
            available_at: self.now + self.spec.reconfig_cost,
            created_at: self.now,
            busy: SimDuration::ZERO,
            alive: true,
        });
        g.speeds_dirty = true;
        CtxId(g.ctxs.len() - 1)
    }

    /// Resizes an **idle** context (green-context reconfiguration: a
    /// stream synchronization, microseconds).
    ///
    /// # Panics
    ///
    /// Panics if the context has queued or running kernels, or if the new
    /// size oversubscribes the group.
    pub fn resize_context(&mut self, group: GroupId, ctx: CtxId, sms: u32) {
        assert!(sms > 0 && sms <= self.spec.sm_count, "bad SM count {sms}");
        let g = &mut self.groups[group.0];
        let in_use: u32 = g
            .ctxs
            .iter()
            .enumerate()
            .filter(|(i, c)| c.alive && *i != ctx.0)
            .map(|(_, c)| c.sms)
            .sum();
        assert!(in_use + sms <= self.spec.sm_count, "SM oversubscription");
        let c = &mut g.ctxs[ctx.0];
        assert!(c.alive, "context removed");
        assert!(c.queue.is_empty(), "resizing a busy context");
        c.sms = sms;
        c.available_at = self.now + self.spec.reconfig_cost;
        g.speeds_dirty = true;
    }

    /// Removes a context, freeing its SMs.
    ///
    /// # Panics
    ///
    /// Panics if the context still has queued or running kernels.
    pub fn remove_context(&mut self, group: GroupId, ctx: CtxId) {
        let c = &mut self.groups[group.0].ctxs[ctx.0];
        assert!(c.queue.is_empty(), "removing a busy context");
        c.alive = false;
        self.groups[group.0].speeds_dirty = true;
    }

    /// The SM count of a live context.
    pub fn context_sms(&self, group: GroupId, ctx: CtxId) -> u32 {
        self.groups[group.0].ctxs[ctx.0].sms
    }

    /// The GPU indices a group spans.
    pub fn group_gpus(&self, group: GroupId) -> &[u32] {
        &self.groups[group.0].gpus
    }

    /// When a group was created.
    pub fn group_created_at(&self, group: GroupId) -> SimTime {
        self.groups[group.0].created_at
    }

    /// The group a kernel was submitted to.
    pub fn kernel_group(&self, kernel: KernelId) -> GroupId {
        self.kernels.get(kernel).group
    }

    /// Submits a kernel to a context's FIFO queue. The kernel cannot start
    /// before `ready_at` (use this to model host-side launch latency).
    /// `tag` is an opaque payload returned on completion.
    ///
    /// # Panics
    ///
    /// Panics if the group or context is dead.
    pub fn submit(
        &mut self,
        group: GroupId,
        ctx: CtxId,
        work: WorkItem,
        ready_at: SimTime,
        tag: u64,
    ) -> KernelId {
        let g = &self.groups[group.0];
        assert!(g.alive, "group destroyed");
        if self.any_dead {
            assert!(
                g.gpus.iter().all(|&gpu| !self.dead[gpu as usize]),
                "submitting to a group with a failed GPU"
            );
        }
        let c = &g.ctxs[ctx.0];
        assert!(c.alive, "context removed");
        let (solo_secs, bw_demand, comp_frac) = self.solo_profile(c.sms, &work);
        let id = self.kernels.next_id();
        self.kernels.push(Kernel {
            group,
            ctx,
            work,
            tag,
            ready_at: ready_at.max(self.now),
            state: KernelState::Queued,
            started_at: SimTime::ZERO,
            solo_secs,
            bw_demand,
            comp_frac,
            remaining: 1.0,
        });
        self.groups[group.0].ctxs[ctx.0].queue.push_back(id);
        id
    }

    /// Solo (contention-free) duration in seconds of `work` on a `sms`-SM
    /// context. This is what offline profiling of a solo run would
    /// measure; the estimator crate uses it to generate its training set.
    pub fn solo_duration(&self, sms: u32, work: &WorkItem) -> f64 {
        self.solo_profile(sms, work).0
    }

    fn solo_profile(&self, sms: u32, work: &WorkItem) -> (f64, f64, f64) {
        let t_comp = work.flops / self.spec.compute_rate_for(work.kind, sms);
        let t_mem = work.bytes / self.spec.mem_rate(sms);
        let roofline = t_comp.max(t_mem);
        let solo = (roofline + work.fixed_secs).max(MIN_SOLO_SECS);
        let bw_demand = work.bytes / solo;
        let comp_frac = if roofline <= 0.0 {
            0.0
        } else {
            (t_comp / solo).clamp(0.0, 1.0)
        };
        (solo, bw_demand, comp_frac)
    }

    /// Cancels all **not-yet-started** kernels in a context's queue (GPU
    /// execution is non-preemptive, so the running head always finishes).
    /// Returns the `(id, tag)` of each cancelled kernel in queue order.
    pub fn cancel_queued(&mut self, group: GroupId, ctx: CtxId) -> Vec<(KernelId, u64)> {
        let queue = &mut self.groups[group.0].ctxs[ctx.0].queue;
        let mut cancelled = Vec::new();
        let mut keep = VecDeque::new();
        while let Some(kid) = queue.pop_front() {
            let k = self.kernels.get_mut(kid);
            if k.state == KernelState::Running {
                keep.push_back(kid);
            } else {
                k.state = KernelState::Cancelled;
                cancelled.push((kid, k.tag));
            }
        }
        *queue = keep;
        cancelled
    }

    /// Number of kernels queued or running on a context.
    pub fn queue_len(&self, group: GroupId, ctx: CtxId) -> usize {
        self.groups[group.0].ctxs[ctx.0].queue.len()
    }

    /// True if the context has no queued or running kernels.
    pub fn is_idle(&self, group: GroupId, ctx: CtxId) -> bool {
        self.queue_len(group, ctx) == 0
    }

    /// The tag a kernel was submitted with.
    pub fn kernel_tag(&self, kernel: KernelId) -> u64 {
        self.kernels.get(kernel).tag
    }

    // ----- time advancement ------------------------------------------------

    /// The time of the next state change (kernel start, kernel completion,
    /// or link-transfer completion), or `None` if fully idle.
    // simlint: hot
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.refresh_dirty_speeds();
        let mut next: Option<SimTime> = self.links.next_completion();
        for g in &self.groups {
            if !g.alive {
                continue;
            }
            for &(kid, speed) in &g.speeds {
                let k = self.kernels.get(kid);
                let t = self.now + completion_dt(k.remaining, k.solo_secs, speed);
                next = Some(next.map_or(t, |n| n.min(t)));
            }
            // Pending starts: heads that are queued (not yet running).
            for c in g.ctxs.iter().filter(|c| c.alive) {
                if let Some(&head) = c.queue.front() {
                    let k = self.kernels.get(head);
                    if k.state == KernelState::Queued {
                        let t = k.ready_at.max(c.available_at).max(self.now);
                        next = Some(next.map_or(t, |n| n.min(t)));
                    }
                }
            }
        }
        next
    }

    /// Advances simulated time to `t`, progressing kernels, starting
    /// pending heads, and recording completions (drain with
    /// [`GpuSim::drain_completed`]).
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the current time.
    // simlint: hot
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "time went backwards: {t} < {}", self.now);
        loop {
            self.start_pending_heads();
            self.refresh_dirty_speeds();
            let boundary = self.next_boundary(t);
            if boundary > self.now {
                self.progress_all(boundary);
            }
            self.now = boundary;
            self.events += 1;
            self.finish_done_kernels();
            if self.now >= t {
                // Start anything that became ready exactly at `t` so
                // callers observe a consistent state.
                self.start_pending_heads();
                break;
            }
        }
        self.links.advance_to(self.now);
    }

    /// One fused simulation step for event-loop drivers: finds the next
    /// state change (kernel start, kernel completion, or link-transfer
    /// completion), advances exactly to it, and processes it — a single
    /// scan where a `next_event_time` + `advance_to` pair performs two.
    /// Returns the event time reached, or `None` (no state change) when
    /// the next event lies beyond `limit` or the simulator is idle.
    ///
    /// After `Some(t)`, check [`GpuSim::has_pending_dispatch`]: pure
    /// kernel-start boundaries complete nothing and can be stepped
    /// through again without a driver round-trip.
    // simlint: hot
    pub fn step_to_next_event(&mut self, limit: SimTime) -> Option<SimTime> {
        self.refresh_dirty_speeds();
        let mut next: Option<SimTime> = self.links.next_completion();
        for g in &self.groups {
            if !g.alive {
                continue;
            }
            for &(kid, speed) in &g.speeds {
                let k = self.kernels.get(kid);
                let t = self.now + completion_dt(k.remaining, k.solo_secs, speed);
                next = Some(next.map_or(t, |n| n.min(t)));
            }
            for c in g.ctxs.iter().filter(|c| c.alive) {
                if let Some(&head) = c.queue.front() {
                    let k = self.kernels.get(head);
                    if k.state == KernelState::Queued {
                        let t = k.ready_at.max(c.available_at).max(self.now);
                        next = Some(next.map_or(t, |n| n.min(t)));
                    }
                }
            }
        }
        let t = next?.max(self.now);
        if t > limit {
            return None;
        }
        // `t` is the earliest event, so one boundary hop reaches it.
        if t > self.now {
            self.progress_all(t);
        }
        self.now = t;
        self.events += 1;
        self.finish_done_kernels();
        self.links.advance_to(t);
        self.start_pending_heads();
        Some(t)
    }

    /// True when kernel or link-transfer completions await a drain.
    // simlint: hot
    pub fn has_pending_dispatch(&self) -> bool {
        !self.completed.is_empty() || self.links.has_completed()
    }

    /// Removes and returns kernels completed since the last drain, in
    /// completion order, as `(id, tag)` pairs.
    pub fn drain_completed(&mut self) -> Vec<(KernelId, u64)> {
        std::mem::take(&mut self.completed)
    }

    /// Allocation-free variant of [`GpuSim::drain_completed`]: clears
    /// `out` and swaps the completion buffer into it, so a caller-owned
    /// buffer is reused across events.
    // simlint: hot
    pub fn drain_completed_into(&mut self, out: &mut Vec<(KernelId, u64)>) {
        out.clear();
        std::mem::swap(&mut self.completed, out);
    }

    /// True if any kernel completed since the last drain.
    pub fn has_completed(&self) -> bool {
        !self.completed.is_empty()
    }

    // simlint: hot
    fn start_pending_heads(&mut self) {
        for g in &mut self.groups {
            if !g.alive {
                continue;
            }
            for c in g.ctxs.iter_mut().filter(|c| c.alive) {
                if let Some(&head) = c.queue.front() {
                    let k = self.kernels.get_mut(head);
                    if k.state == KernelState::Queued && self.now >= k.ready_at.max(c.available_at)
                    {
                        k.state = KernelState::Running;
                        k.started_at = self.now;
                        g.speeds_dirty = true;
                    }
                }
            }
        }
    }

    /// The earliest of: next completion at current speeds, next head start,
    /// next link completion, capped at `t`. Requires fresh speed caches
    /// (callers run [`GpuSim::refresh_dirty_speeds`] first).
    // simlint: hot
    fn next_boundary(&self, t: SimTime) -> SimTime {
        let mut boundary = t;
        if let Some(lt) = self.links.next_completion() {
            if lt > self.now {
                boundary = boundary.min(lt);
            }
        }
        for g in &self.groups {
            if !g.alive {
                continue;
            }
            for &(kid, speed) in &g.speeds {
                let k = self.kernels.get(kid);
                boundary = boundary.min(self.now + completion_dt(k.remaining, k.solo_secs, speed));
            }
            for c in g.ctxs.iter().filter(|c| c.alive) {
                if let Some(&head) = c.queue.front() {
                    let k = self.kernels.get(head);
                    if k.state == KernelState::Queued {
                        let start = k.ready_at.max(c.available_at);
                        if start > self.now {
                            boundary = boundary.min(start);
                        }
                    }
                }
            }
        }
        boundary.max(self.now)
    }

    // simlint: hot
    fn progress_all(&mut self, to: SimTime) {
        // One nanos→secs→nanos conversion per boundary, not per kernel;
        // `from_secs(as_secs(d)) == d` exactly below ~11 days of nanos
        // (the relative error of the two roundings stays under the 0.5 ns
        // rounding threshold), so busy accounting is unchanged.
        let dt = (to - self.now).as_secs();
        let dt_dur = SimDuration::from_secs(dt);
        let sm_total = self.spec.sm_count as f64;
        let GpuSim {
            kernels, groups, ..
        } = self;
        for g in groups.iter_mut() {
            if !g.alive {
                continue;
            }
            let Group {
                ctxs,
                speeds,
                util_accum,
                ..
            } = g;
            for &(kid, speed) in speeds.iter() {
                let k = kernels.get_mut(kid);
                k.remaining = (k.remaining - speed * dt / k.solo_secs).max(0.0);
                let ctx = k.ctx.0;
                let sms = ctxs[ctx].sms;
                let quality = 0.25 + 0.75 * k.comp_frac;
                *util_accum += dt * (sms as f64 / sm_total) * quality;
                ctxs[ctx].busy += dt_dur;
            }
        }
    }

    // simlint: hot
    fn finish_done_kernels(&mut self) {
        let GpuSim {
            kernels,
            groups,
            completed,
            ..
        } = self;
        for g in groups.iter_mut() {
            if !g.alive {
                continue;
            }
            let Group {
                ctxs, speeds_dirty, ..
            } = g;
            for c in ctxs.iter_mut() {
                if !c.alive {
                    continue;
                }
                while let Some(&head) = c.queue.front() {
                    let k = kernels.get_mut(head);
                    if k.state == KernelState::Running
                        && (k.remaining <= DONE_EPS || k.remaining * k.solo_secs <= 1e-10)
                    {
                        k.state = KernelState::Done;
                        k.remaining = 0.0;
                        completed.push((head, k.tag));
                        c.queue.pop_front();
                        *speeds_dirty = true;
                    } else {
                        break;
                    }
                }
            }
        }
        kernels.compact();
    }

    /// Rebuilds the speed cache of every live group whose running set may
    /// have changed since the last rebuild.
    // simlint: hot
    fn refresh_dirty_speeds(&mut self) {
        // Field-level split borrows: groups are rebuilt in place while the
        // spec/kernel tables are read, with no buffer detach/restore.
        let GpuSim {
            spec,
            kernels,
            groups,
            degrade,
            speed_scratch,
            ..
        } = self;
        for g in groups.iter_mut() {
            if g.speeds_dirty && g.alive {
                compute_group_speeds_into(spec, kernels, degrade, g, speed_scratch);
                g.speeds_dirty = false;
            }
        }
    }

    // ----- fault injection --------------------------------------------------

    /// Applies one hardware degradation, merging with whatever is
    /// already active (the most severe value per resource wins). Takes
    /// effect at the next event boundary: in-flight kernel finish times
    /// are recomputed lazily through [`GpuSim::next_event_time`] exactly
    /// the way processor-sharing reshares already propagate.
    ///
    /// Remaining fractions are floored at 5 % so progress is guaranteed
    /// even at full fault intensity. Degradations are visible to
    /// schedulers only as slowdown — cached solo profiles (what the
    /// estimator sees) are untouched.
    pub fn apply_degradation(&mut self, d: &HwDegradation) {
        match *d {
            HwDegradation::SmOffline { gpu, fraction } => {
                if let Some(f) = self.degrade.sm.get_mut(gpu as usize) {
                    *f = f.min((1.0 - fraction).max(0.05));
                }
            }
            HwDegradation::HbmBandwidth { gpu, bw_fraction } => {
                if let Some(f) = self.degrade.hbm.get_mut(gpu as usize) {
                    *f = f.min(bw_fraction.clamp(0.05, 1.0));
                }
            }
            HwDegradation::NvlinkBandwidth { link, bw_fraction } => {
                if !self.links.is_empty() {
                    let id = LinkId(link % self.links.len());
                    self.links.set_bw_factor(id, bw_fraction.clamp(0.05, 1.0));
                }
            }
            HwDegradation::KernelSlowdown { mult } => {
                self.degrade.mult = self.degrade.mult.max(mult.max(1.0));
            }
        }
        self.degrade.active = self.degrade.mult > 1.0
            || self.degrade.sm.iter().any(|&f| f < 1.0)
            || self.degrade.hbm.iter().any(|&f| f < 1.0);
        self.mark_all_speeds_dirty();
    }

    /// Restores healthy hardware: all SM/HBM/NVLink factors return to
    /// nominal and the kernel slowdown clears. In-flight kernels resume
    /// full speed from the next event boundary.
    pub fn clear_degradation(&mut self) {
        // In-place reset (no reallocation): fault boundaries call this at
        // every window edge.
        self.degrade.sm.fill(1.0);
        self.degrade.hbm.fill(1.0);
        self.degrade.mult = 1.0;
        self.degrade.active = false;
        self.links.clear_bw_factors();
        self.mark_all_speeds_dirty();
    }

    /// Invalidates every group's speed cache (degradation changes feed
    /// into every water-filling capacity and final rate).
    fn mark_all_speeds_dirty(&mut self) {
        for g in &mut self.groups {
            g.speeds_dirty = true;
        }
    }

    /// Kills a GPU outright (fail-stop). Every kernel on every live
    /// group containing the GPU — queued *and* running; a crash does not
    /// wait for the non-preemptive head — is cancelled and its `(id,
    /// tag)` returned in deterministic (group, context, queue) order.
    /// Queues are left empty, so the affected groups and contexts remain
    /// legal to resize, remove, or destroy. Further submissions to those
    /// groups panic until [`GpuSim::recover_gpu`].
    ///
    /// In-flight link transfers are *not* cancelled (DMA engines drain
    /// independently); callers must discard orphaned transfer tags.
    pub fn fail_gpu(&mut self, gpu: u32) -> Vec<(KernelId, u64)> {
        assert!(gpu < self.num_gpus, "GPU index out of range");
        self.dead[gpu as usize] = true;
        self.any_dead = true;
        let mut cancelled = Vec::new();
        for g in &mut self.groups {
            if !g.alive || !g.gpus.contains(&gpu) {
                continue;
            }
            g.speeds_dirty = true;
            for c in g.ctxs.iter_mut().filter(|c| c.alive) {
                while let Some(kid) = c.queue.pop_front() {
                    let k = self.kernels.get_mut(kid);
                    k.state = KernelState::Cancelled;
                    cancelled.push((kid, k.tag));
                }
            }
        }
        cancelled
    }

    /// Brings a failed GPU back online. Groups containing it accept
    /// submissions again; the caller decides what work to relaunch.
    pub fn recover_gpu(&mut self, gpu: u32) {
        assert!(gpu < self.num_gpus, "GPU index out of range");
        self.dead[gpu as usize] = false;
        self.any_dead = self.dead.iter().any(|&d| d);
    }

    /// Whether a GPU is currently failed.
    pub fn gpu_is_dead(&self, gpu: u32) -> bool {
        self.dead.get(gpu as usize).copied().unwrap_or(false)
    }

    /// Number of currently fail-stopped GPUs (0 = healthy). Routers use
    /// this as a cheap health signal when scoring instances.
    pub fn num_dead_gpus(&self) -> u32 {
        if !self.any_dead {
            return 0;
        }
        self.dead.iter().filter(|&&d| d).count() as u32
    }

    /// Whether any GPU of a group is currently failed (the lockstep
    /// group cannot run).
    pub fn group_has_dead_gpu(&self, group: GroupId) -> bool {
        self.any_dead
            && self.groups[group.0]
                .gpus
                .iter()
                .any(|&g| self.dead[g as usize])
    }

    // ----- links ------------------------------------------------------------

    /// Creates a point-to-point transfer link with the given bandwidth.
    pub fn create_link(&mut self, bw_gbs: f64, latency: SimDuration) -> LinkId {
        self.links.create(bw_gbs, latency)
    }

    /// Enqueues a transfer of `bytes` on a link; completes FIFO.
    pub fn submit_transfer(&mut self, link: LinkId, bytes: f64, tag: u64) -> TransferId {
        self.links.submit(self.now, link, bytes, tag)
    }

    /// Removes and returns transfers completed since the last drain.
    pub fn drain_completed_transfers(&mut self) -> Vec<(TransferId, u64)> {
        self.links.drain_completed()
    }

    /// Allocation-free variant of
    /// [`GpuSim::drain_completed_transfers`]: clears `out` and swaps the
    /// completion buffer into it.
    // simlint: hot
    pub fn drain_completed_transfers_into(&mut self, out: &mut Vec<(TransferId, u64)>) {
        self.links.drain_completed_into(out);
    }

    // ----- accounting -------------------------------------------------------

    /// Aggregated GPU utilization of a group since accounting was last
    /// reset: SM-share × intra-SM quality, integrated over time (the
    /// Nsight-style metric of Table 5). Returns 0 for a zero-length
    /// window.
    pub fn utilization(&self, group: GroupId) -> f64 {
        let g = &self.groups[group.0];
        let window = (self.now - g.accounted_from).as_secs();
        if window <= 0.0 {
            0.0
        } else {
            (g.util_accum / window).min(1.0)
        }
    }

    /// Busy-time fraction of one context since its creation (the
    /// complement is the bubble ratio of §4.4.2). Returns 1.0 for a
    /// zero-length window.
    pub fn ctx_busy_ratio(&self, group: GroupId, ctx: CtxId) -> f64 {
        let c = &self.groups[group.0].ctxs[ctx.0];
        let window = (self.now - c.created_at).as_secs();
        if window <= 0.0 {
            1.0
        } else {
            (c.busy.as_secs() / window).min(1.0)
        }
    }

    /// Resets utilization windows (e.g. after warm-up).
    pub fn reset_accounting(&mut self) {
        for g in &mut self.groups {
            g.util_accum = 0.0;
            g.accounted_from = self.now;
            for c in &mut g.ctxs {
                c.busy = SimDuration::ZERO;
                c.created_at = self.now;
            }
        }
    }
}

/// Time until a running kernel completes at the given speed, floored at
/// 1 ns so simulated time always makes progress.
fn completion_dt(remaining: f64, solo_secs: f64, speed: f64) -> SimDuration {
    let dt = remaining * solo_secs / speed.max(1e-12);
    SimDuration::from_nanos(((dt * 1e9).ceil() as u64).max(1))
}

/// Speeds (fraction of solo rate) for every running kernel in a group,
/// honoring weighted bandwidth water-filling and the interference
/// residual, written into `g.speeds`. Deterministic: iterates contexts in
/// index order. A free function over split-borrowed simulator fields so
/// the per-event rebuild touches no scratch-buffer swaps.
// simlint: hot
fn compute_group_speeds_into(
    spec: &GpuSpec,
    kernels: &KernelTable,
    degrade: &DegradeState,
    g: &mut Group,
    scratch: &mut SpeedScratch,
) {
    let SpeedScratch {
        running,
        demands,
        weights,
        grants,
        satisfied,
    } = scratch;
    let Group {
        gpus,
        ctxs,
        speeds: out,
        ..
    } = g;
    out.clear();
    running.clear();
    for c in ctxs.iter().filter(|c| c.alive) {
        if let Some(&head) = c.queue.front() {
            if kernels.get(head).state == KernelState::Running {
                running.push(head);
            }
        }
    }
    if running.is_empty() {
        return;
    }
    // Fault injection: a degraded group loses HBM bandwidth (shrinks
    // the water-filling capacity) and compute speed (scales every
    // kernel's final rate). The healthy path is untouched so
    // fault-free runs stay bit-identical.
    let (speed_factor, mem_factor) = if degrade.active {
        group_degradation_of(degrade, gpus)
    } else {
        (1.0, 1.0)
    };
    let mut capacity = spec.hbm_bw_gbs * 1e9 * spec.mem_efficiency;
    if degrade.active {
        capacity *= mem_factor;
    }
    if running.len() == 1 && !degrade.active {
        // A lone healthy kernel — the decode steady state. Its grant is
        // what water-filling over a single entry yields (the full demand
        // when it fits, otherwise the capacity scaled by its own weight
        // share), and a single kernel has zero interference residual, so
        // the generic machinery below reduces to exactly these float ops.
        let kid = running[0];
        let k = kernels.get(kid);
        let mem_speed = if k.bw_demand <= 0.0 {
            1.0
        } else {
            let grant = if k.bw_demand <= capacity {
                k.bw_demand
            } else {
                let w = spec.mem_rate(ctxs[k.ctx.0].sms);
                let share = capacity * w / w;
                if k.bw_demand <= share {
                    k.bw_demand
                } else {
                    share
                }
            };
            (grant / k.bw_demand).min(1.0)
        };
        let speed = mem_speed / (1.0 + 0.0);
        out.push((kid, speed.clamp(1e-12, 1.0)));
        return;
    }
    demands.clear();
    weights.clear();
    for &kid in running.iter() {
        let k = kernels.get(kid);
        demands.push(k.bw_demand);
        weights.push(spec.mem_rate(ctxs[k.ctx.0].sms));
    }
    waterfill_into(demands, weights, capacity, grants, satisfied);

    for (i, &kid) in running.iter().enumerate() {
        let grant = grants[i];
        let k = kernels.get(kid);
        let mem_speed = if k.bw_demand <= 0.0 {
            1.0
        } else {
            (grant / k.bw_demand).min(1.0)
        };
        let residual = interference_residual_of(spec, kernels, ctxs, kid, running);
        let mut speed = mem_speed / (1.0 + residual);
        if degrade.active {
            speed *= speed_factor;
        }
        out.push((kid, speed.clamp(1e-12, 1.0)));
    }
}

/// Deterministic, configuration-dependent extra slowdown applied to a
/// kernel when it co-runs with others (cache/DRAM-row interference the
/// partitioning cannot control). Bounded by
/// `contention_residual_max × co-runner memory pressure`.
// simlint: hot
fn interference_residual_of(
    spec: &GpuSpec,
    kernels: &KernelTable,
    ctxs: &[Ctx],
    kid: KernelId,
    running: &[KernelId],
) -> f64 {
    if running.len() < 2 {
        return 0.0;
    }
    let k = kernels.get(kid);
    let capacity = spec.hbm_bw_gbs * 1e9 * spec.mem_efficiency;
    let mut pressure = 0.0;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |v: u64, h: &mut u64| {
        *h ^= v;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    // Hash inputs are quantized to power-of-4 byte buckets so the
    // residual is piecewise-constant at the same granularity a
    // profiling grid samples at.
    let byte_bucket = |bytes: f64| (bytes.max(1.0).log2() / 2.0) as u64;
    mix(ctxs[k.ctx.0].sms as u64, &mut hash);
    mix(k.work.kind as u64 + 1, &mut hash);
    mix(byte_bucket(k.work.bytes), &mut hash);
    for &other in running.iter().filter(|&&o| o != kid) {
        let o = kernels.get(other);
        // A co-runner perturbs both through its memory traffic and —
        // even when compute-bound — through L2/TLB/DRAM-row pressure
        // proportional to its SM footprint.
        let bw_pressure = (o.bw_demand / capacity).min(1.0);
        let sm_pressure = 0.7 * ctxs[o.ctx.0].sms as f64 / spec.sm_count as f64;
        pressure += bw_pressure.max(sm_pressure);
        mix(ctxs[o.ctx.0].sms as u64, &mut hash);
        mix(o.work.kind as u64 + 1, &mut hash);
        mix(byte_bucket(o.work.bytes), &mut hash);
    }
    // Hash → factor in [0.25, 1.0].
    let factor = 0.25 + 0.75 * ((hash >> 11) as f64 / (1u64 << 53) as f64);
    spec.contention_residual_max * pressure.min(1.0) * factor
}

/// The slowdown factors a group currently suffers, as
/// `(speed_factor, mem_factor)`: a lockstep group runs at the pace
/// of its slowest member, so both are minima over the group's GPUs.
fn group_degradation_of(degrade: &DegradeState, gpus: &[u32]) -> (f64, f64) {
    let mut sm = 1.0f64;
    let mut hbm = 1.0f64;
    for &gpu in gpus {
        if let Some(&f) = degrade.sm.get(gpu as usize) {
            sm = sm.min(f);
        }
        if let Some(&f) = degrade.hbm.get(gpu as usize) {
            hbm = hbm.min(f);
        }
    }
    (sm / degrade.mult, hbm)
}

/// Weighted water-filling: grant each demand its share of `capacity`
/// proportional to weight, redistributing slack from under-demanding
/// entries. Returns per-entry grants (≥ 0, ≤ demand where possible).
#[cfg(test)]
fn waterfill(demands: &[f64], weights: &[f64], capacity: f64) -> Vec<f64> {
    let mut grants = Vec::new();
    let mut satisfied = Vec::new();
    waterfill_into(demands, weights, capacity, &mut grants, &mut satisfied);
    grants
}

/// Allocation-free [`waterfill`]: writes grants into a caller-owned
/// buffer (`satisfied` is the work set). Bit-identical to the allocating
/// formulation — the float operations and their order are unchanged.
// simlint: hot
fn waterfill_into(
    demands: &[f64],
    weights: &[f64],
    capacity: f64,
    grants: &mut Vec<f64>,
    satisfied: &mut Vec<bool>,
) {
    grants.clear();
    let total: f64 = demands.iter().sum();
    if total <= capacity {
        grants.extend_from_slice(demands);
        return;
    }
    let n = demands.len();
    grants.resize(n, 0.0);
    satisfied.clear();
    satisfied.resize(n, false);
    let mut remaining_cap = capacity;
    loop {
        let active_weight: f64 = (0..n).filter(|&i| !satisfied[i]).map(|i| weights[i]).sum();
        if active_weight <= 0.0 || remaining_cap <= 0.0 {
            break;
        }
        let mut progressed = false;
        for i in 0..n {
            if satisfied[i] {
                continue;
            }
            let share = remaining_cap * weights[i] / active_weight;
            if demands[i] <= share {
                grants[i] = demands[i];
                satisfied[i] = true;
                progressed = true;
            }
        }
        if progressed {
            remaining_cap = capacity - grants.iter().sum::<f64>();
            continue;
        }
        // No one is satisfiable: split remaining capacity by weight.
        for i in 0..n {
            if !satisfied[i] {
                grants[i] = remaining_cap * weights[i] / active_weight;
                satisfied[i] = true;
            }
        }
        break;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::KernelKind;

    fn sim() -> GpuSim {
        GpuSim::new(GpuSpec::a100(), 8, 600.0)
    }

    #[test]
    fn single_kernel_runs_at_solo_speed() {
        let mut s = sim();
        let g = s.create_group((0..8).collect());
        let c = s.set_context(g, 108);
        let flops = s.spec().compute_rate(108); // exactly 1s of compute
        let w = WorkItem::new(KernelKind::Prefill, flops, 0.0, 0.0);
        s.submit(g, c, w, SimTime::ZERO, 42);
        let t = loop {
            let t = s.next_event_time().unwrap();
            s.advance_to(t);
            if !s.drain_completed().is_empty() {
                break t;
            }
        };
        // Starts after reconfig cost (10us), runs 1s.
        assert!((t.as_secs() - 1.0).abs() < 1e-3, "took {t}");
    }

    #[test]
    fn fifo_queue_serializes() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        let w = WorkItem::new(KernelKind::Prefill, 31.2e12, 0.0, 0.0); // 100ms each
        s.submit(g, c, w, SimTime::ZERO, 1);
        s.submit(g, c, w, SimTime::ZERO, 2);
        let mut done = Vec::new();
        while done.len() < 2 {
            let t = s.next_event_time().unwrap();
            s.advance_to(t);
            for (_, tag) in s.drain_completed() {
                done.push((s.now().as_secs(), tag));
            }
        }
        assert_eq!(done[0].1, 1);
        assert_eq!(done[1].1, 2);
        assert!((done[1].0 - 2.0 * done[0].0).abs() < 1e-3, "{done:?}");
    }

    #[test]
    fn ready_at_delays_start() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        let w = WorkItem::new(KernelKind::Decode, 0.0, 0.0, 0.010); // 10ms fixed
        s.submit(g, c, w, SimTime::from_secs(1.0), 7);
        let mut finish = None;
        while finish.is_none() {
            let t = s.next_event_time().unwrap();
            s.advance_to(t);
            if !s.drain_completed().is_empty() {
                finish = Some(s.now());
            }
        }
        assert!((finish.unwrap().as_secs() - 1.010).abs() < 1e-6);
    }

    #[test]
    fn contention_slows_decode_within_bounds() {
        // A memory-bound decode co-running with a heavy prefill should slow
        // by more than 0 and at most ~(oversubscription + residual cap).
        let mut s = sim();
        let g = s.create_group((0..8).collect());
        let d_ctx = s.set_context(g, 16);
        let p_ctx = s.set_context(g, 92);
        let decode = WorkItem::new(KernelKind::Decode, 0.6e12, 20.0e9, 0.0);
        let solo = s.solo_duration(16, &decode);

        // Solo run first.
        s.submit(g, d_ctx, decode, SimTime::ZERO, 1);
        let mut solo_measured = None;
        while solo_measured.is_none() {
            let t = s.next_event_time().unwrap();
            s.advance_to(t);
            if !s.drain_completed().is_empty() {
                solo_measured = Some(s.now().as_secs());
            }
        }
        assert!((solo_measured.unwrap() - solo).abs() / solo < 0.01);

        // Now co-run with a prefill that also wants lots of bandwidth.
        let base = s.now();
        let prefill = WorkItem::new(KernelKind::Prefill, 40.0e12, 60.0e9, 0.0);
        s.submit(g, p_ctx, prefill, base, 2);
        s.submit(g, d_ctx, decode, base, 3);
        let mut decode_done = None;
        while decode_done.is_none() {
            let t = s.next_event_time().unwrap();
            s.advance_to(t);
            for (_, tag) in s.drain_completed() {
                if tag == 3 {
                    decode_done = Some((s.now() - base).as_secs());
                }
            }
        }
        let slowdown = decode_done.unwrap() / solo;
        assert!(slowdown > 1.0, "expected some slowdown, got {slowdown}");
        assert!(slowdown < 2.0, "slowdown {slowdown} implausibly large");
    }

    #[test]
    fn no_contention_when_prefill_is_pure_compute() {
        let mut s = sim();
        let g = s.create_group((0..8).collect());
        let d_ctx = s.set_context(g, 16);
        let p_ctx = s.set_context(g, 92);
        let decode = WorkItem::new(KernelKind::Decode, 0.0, 10.0e9, 0.0);
        let solo = s.solo_duration(16, &decode);
        let prefill = WorkItem::new(KernelKind::Prefill, 100.0e12, 0.0, 0.0);
        s.submit(g, p_ctx, prefill, SimTime::ZERO, 1);
        s.submit(g, d_ctx, decode, SimTime::ZERO, 2);
        let mut decode_t = None;
        while decode_t.is_none() {
            let t = s.next_event_time().unwrap();
            s.advance_to(t);
            for (_, tag) in s.drain_completed() {
                if tag == 2 {
                    decode_t = Some(s.now().as_secs());
                }
            }
        }
        // A pure-compute co-runner causes no water-filling loss; only the
        // bounded interference residual (from its SM footprint) remains.
        let measured = decode_t.unwrap() - 10e-6; // minus reconfig delay
        let slowdown = measured / solo;
        assert!(slowdown >= 1.0 - 1e-6, "speedup is impossible: {slowdown}");
        assert!(
            slowdown < 1.0 + s.spec().contention_residual_max + 1e-6,
            "residual exceeded cap: {slowdown}"
        );
    }

    #[test]
    fn cancel_queued_keeps_running_head() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        let w = WorkItem::new(KernelKind::Prefill, 31.2e12, 0.0, 0.0);
        s.submit(g, c, w, SimTime::ZERO, 1);
        s.submit(g, c, w, SimTime::ZERO, 2);
        s.submit(g, c, w, SimTime::ZERO, 3);
        // Let the head start.
        s.advance_to(SimTime::from_secs(0.05));
        let cancelled = s.cancel_queued(g, c);
        assert_eq!(
            cancelled.iter().map(|&(_, t)| t).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(s.queue_len(g, c), 1);
        // Head still completes.
        let mut done = Vec::new();
        while let Some(t) = s.next_event_time() {
            s.advance_to(t);
            done.extend(s.drain_completed());
            if s.is_idle(g, c) {
                break;
            }
        }
        assert_eq!(done, vec![(KernelId(0), 1)]);
    }

    #[test]
    fn oversubscription_panics() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        s.set_context(g, 96);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.set_context(g, 16);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn utilization_and_busy_accounting() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        // 1 second of pure compute, then 1 second idle.
        let w = WorkItem::new(KernelKind::Prefill, s.spec().compute_rate(108), 0.0, 0.0);
        s.submit(g, c, w, SimTime::ZERO, 1);
        s.advance_to(SimTime::from_secs(2.0));
        assert!(!s.drain_completed().is_empty());
        let util = s.utilization(g);
        assert!((util - 0.5).abs() < 0.01, "util {util}");
        let busy = s.ctx_busy_ratio(g, c);
        assert!((busy - 0.5).abs() < 0.01, "busy {busy}");
    }

    #[test]
    fn disjoint_groups_do_not_contend() {
        let mut s = sim();
        let g1 = s.create_group(vec![0, 1, 2, 3]);
        let g2 = s.create_group(vec![4, 5, 6, 7]);
        let c1 = s.set_context(g1, 108);
        let c2 = s.set_context(g2, 108);
        let w = WorkItem::new(KernelKind::Decode, 0.0, 100.0e9, 0.0);
        let solo = s.solo_duration(108, &w);
        s.submit(g1, c1, w, SimTime::ZERO, 1);
        s.submit(g2, c2, w, SimTime::ZERO, 2);
        let mut times = Vec::new();
        while times.len() < 2 {
            let t = s.next_event_time().unwrap();
            s.advance_to(t);
            for _ in s.drain_completed() {
                times.push(s.now().as_secs());
            }
        }
        for t in times {
            assert!((t - 10e-6 - solo).abs() / solo < 0.01, "{t} vs {solo}");
        }
    }

    fn run_until_done(s: &mut GpuSim) -> SimTime {
        loop {
            let t = s.next_event_time().unwrap();
            s.advance_to(t);
            if !s.drain_completed().is_empty() {
                return t;
            }
        }
    }

    #[test]
    fn sm_brownout_slows_compute_bound_kernel() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        let w = WorkItem::new(KernelKind::Prefill, s.spec().compute_rate(108), 0.0, 0.0);
        s.apply_degradation(&HwDegradation::SmOffline {
            gpu: 0,
            fraction: 0.5,
        });
        s.submit(g, c, w, SimTime::ZERO, 1);
        let t = run_until_done(&mut s);
        // Half the SMs → the 1 s kernel takes ~2 s.
        assert!((t.as_secs() - 2.0).abs() < 1e-2, "took {t}");
    }

    #[test]
    fn hbm_degradation_slows_memory_bound_kernel() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        let w = WorkItem::new(KernelKind::Decode, 0.0, 200.0e9, 0.0);
        let solo = s.solo_duration(108, &w);
        s.apply_degradation(&HwDegradation::HbmBandwidth {
            gpu: 0,
            bw_fraction: 0.5,
        });
        s.submit(g, c, w, SimTime::ZERO, 1);
        let t = run_until_done(&mut s);
        let slowdown = (t.as_secs() - 10e-6) / solo;
        assert!(
            (1.4..=2.1).contains(&slowdown),
            "halved HBM should ~double a memory-bound kernel, got {slowdown}×"
        );
    }

    #[test]
    fn mid_flight_degradation_reshapes_and_clear_restores() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        // 1 s of compute at full speed.
        let w = WorkItem::new(KernelKind::Prefill, s.spec().compute_rate(108), 0.0, 0.0);
        s.submit(g, c, w, SimTime::ZERO, 1);
        s.advance_to(SimTime::from_secs(0.5));
        s.apply_degradation(&HwDegradation::KernelSlowdown { mult: 2.0 });
        s.advance_to(SimTime::from_secs(1.0));
        // Half the work remained at the spike: it now takes ~1 s more.
        assert!(s.drain_completed().is_empty(), "must still be running");
        s.clear_degradation();
        let t = run_until_done(&mut s);
        // 0.5 s slowed (×2 → 0.25 progress) then full speed again.
        assert!((t.as_secs() - 1.25).abs() < 1e-2, "took {t}");
    }

    #[test]
    fn degradation_on_other_gpu_is_invisible() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        let w = WorkItem::new(KernelKind::Prefill, s.spec().compute_rate(108), 0.0, 0.0);
        s.apply_degradation(&HwDegradation::SmOffline {
            gpu: 7,
            fraction: 0.9,
        });
        s.submit(g, c, w, SimTime::ZERO, 1);
        let t = run_until_done(&mut s);
        assert!((t.as_secs() - 1.0).abs() < 1e-3, "took {t}");
    }

    #[test]
    fn waterfill_properties() {
        // Under capacity: everyone gets their demand.
        let g = waterfill(&[1.0, 2.0], &[1.0, 1.0], 10.0);
        assert_eq!(g, vec![1.0, 2.0]);
        // Over capacity: grants sum to capacity, no one exceeds demand.
        let g = waterfill(&[8.0, 8.0, 1.0], &[1.0, 1.0, 1.0], 9.0);
        assert!((g.iter().sum::<f64>() - 9.0).abs() < 1e-9);
        assert!(g[2] <= 1.0 + 1e-9);
        assert!(g[0] <= 8.0 && g[1] <= 8.0);
        // Small demander is fully satisfied; big ones split the rest.
        assert!((g[2] - 1.0).abs() < 1e-9);
        assert!((g[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fail_gpu_cancels_running_and_queued_work() {
        let mut s = sim();
        let g = s.create_group(vec![0, 1]);
        let c = s.set_context(g, 108);
        let w = WorkItem::new(KernelKind::Prefill, 31.2e12, 0.0, 0.0);
        s.submit(g, c, w, SimTime::ZERO, 1);
        s.submit(g, c, w, SimTime::ZERO, 2);
        // Let the head start running — a crash must kill it anyway.
        s.advance_to(SimTime::from_secs(0.05));
        let cancelled = s.fail_gpu(1);
        assert_eq!(
            cancelled.iter().map(|&(_, t)| t).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(s.is_idle(g, c));
        assert!(s.gpu_is_dead(1));
        assert!(s.group_has_dead_gpu(g));
        // Nothing completes afterwards; the sim goes idle.
        assert!(s.next_event_time().is_none());
        assert!(s.drain_completed().is_empty());
        // The emptied group is legal to destroy.
        s.remove_context(g, c);
        s.destroy_group(g);
    }

    #[test]
    fn fail_gpu_spares_disjoint_groups() {
        let mut s = sim();
        let g1 = s.create_group(vec![0, 1, 2, 3]);
        let g2 = s.create_group(vec![4, 5, 6, 7]);
        let c1 = s.set_context(g1, 108);
        let c2 = s.set_context(g2, 108);
        let w = WorkItem::new(KernelKind::Prefill, 31.2e12, 0.0, 0.0);
        s.submit(g1, c1, w, SimTime::ZERO, 1);
        s.submit(g2, c2, w, SimTime::ZERO, 2);
        let cancelled = s.fail_gpu(0);
        assert_eq!(cancelled.len(), 1);
        assert!(!s.group_has_dead_gpu(g2));
        // The survivor still completes its kernel.
        let t = run_until_done(&mut s);
        assert!(t.as_secs() > 0.0);
    }

    #[test]
    fn submit_to_failed_group_panics_until_recovery() {
        let mut s = sim();
        let g = s.create_group(vec![0]);
        let c = s.set_context(g, 108);
        s.fail_gpu(0);
        let w = WorkItem::new(KernelKind::Decode, 0.0, 0.0, 0.010);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.submit(g, c, w, SimTime::ZERO, 1);
        }));
        assert!(r.is_err());
        s.recover_gpu(0);
        assert!(!s.gpu_is_dead(0));
        s.submit(g, c, w, SimTime::ZERO, 2);
        let t = run_until_done(&mut s);
        assert!(t.as_secs() > 0.0);
    }

    #[test]
    fn clear_degradation_does_not_resurrect_dead_gpus() {
        let mut s = sim();
        s.fail_gpu(3);
        s.apply_degradation(&HwDegradation::KernelSlowdown { mult: 2.0 });
        s.clear_degradation();
        assert!(s.gpu_is_dead(3), "fail-stop must survive boundary resets");
    }

    #[test]
    fn advance_to_past_is_rejected() {
        let mut s = sim();
        s.advance_to(SimTime::from_secs(1.0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.advance_to(SimTime::from_secs(0.5));
        }));
        assert!(r.is_err());
    }
}
