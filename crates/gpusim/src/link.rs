//! Point-to-point transfer links (NVLink) for KV-cache migration.
//!
//! Disaggregated baselines (SGLang-PD, Splitwise) move a request's KV
//! cache from the prefill instance to the decode instance; LoongServe
//! migrates when it scales groups down. A [`Links`] channel serializes
//! transfers FIFO at the link bandwidth plus a per-message latency.

use simcore::{SimDuration, SimTime};

/// Identifies a transfer link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

/// Identifies a submitted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(pub(crate) usize);

#[derive(Debug)]
struct Link {
    bw_gbs: f64,
    /// Degradation multiplier on the nominal bandwidth (fault
    /// injection); `1.0` = healthy.
    bw_factor: f64,
    latency: SimDuration,
    busy_until: SimTime,
    in_flight: Vec<(SimTime, TransferId, u64)>,
}

/// The set of links in a server.
#[derive(Debug)]
pub struct Links {
    default_bw_gbs: f64,
    links: Vec<Link>,
    next_transfer: usize,
    completed: Vec<(TransferId, u64)>,
}

impl Links {
    /// Creates an empty link set with a default bandwidth for new links.
    pub fn new(default_bw_gbs: f64) -> Links {
        Links {
            default_bw_gbs,
            links: Vec::new(),
            next_transfer: 0,
            completed: Vec::new(),
        }
    }

    /// Creates a link; `bw_gbs <= 0` uses the default bandwidth.
    pub fn create(&mut self, bw_gbs: f64, latency: SimDuration) -> LinkId {
        let bw = if bw_gbs > 0.0 {
            bw_gbs
        } else {
            self.default_bw_gbs
        };
        self.links.push(Link {
            bw_gbs: bw,
            bw_factor: 1.0,
            latency,
            busy_until: SimTime::ZERO,
            in_flight: Vec::new(),
        });
        LinkId(self.links.len() - 1)
    }

    /// Number of links created so far.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when no links exist.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Sets a link's degradation multiplier (fraction of nominal
    /// bandwidth remaining). Applies to transfers submitted from now on;
    /// in-flight transfers keep their committed finish times (FIFO links
    /// compute finish at submit). Clamped to `[0.01, 1.0]`.
    pub fn set_bw_factor(&mut self, link: LinkId, factor: f64) {
        if let Some(l) = self.links.get_mut(link.0) {
            l.bw_factor = factor.clamp(0.01, 1.0);
        }
    }

    /// Restores every link to nominal bandwidth.
    pub fn clear_bw_factors(&mut self) {
        for l in &mut self.links {
            l.bw_factor = 1.0;
        }
    }

    /// Enqueues a transfer at time `now`; FIFO per link.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite.
    pub fn submit(&mut self, now: SimTime, link: LinkId, bytes: f64, tag: u64) -> TransferId {
        assert!(bytes.is_finite() && bytes >= 0.0, "invalid bytes {bytes}");
        let l = &mut self.links[link.0];
        let start = now.max(l.busy_until);
        // `bw_factor == 1.0` is the healthy case and an exact identity
        // (IEEE-754 multiplication by one), so fault-free runs stay
        // bit-identical.
        let dur = SimDuration::from_secs(bytes / (l.bw_gbs * l.bw_factor * 1e9)) + l.latency;
        let finish = start + dur;
        l.busy_until = finish;
        let id = TransferId(self.next_transfer);
        self.next_transfer += 1;
        l.in_flight.push((finish, id, tag));
        id
    }

    /// Earliest in-flight completion across all links.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.links
            .iter()
            .flat_map(|l| l.in_flight.iter().map(|&(t, _, _)| t))
            .min()
    }

    /// Moves transfers finishing at or before `now` to the completed list.
    pub fn advance_to(&mut self, now: SimTime) {
        for l in &mut self.links {
            let mut i = 0;
            while i < l.in_flight.len() {
                if l.in_flight[i].0 <= now {
                    let (_, id, tag) = l.in_flight.remove(i);
                    self.completed.push((id, tag));
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Drains completed transfers in completion order.
    pub fn drain_completed(&mut self) -> Vec<(TransferId, u64)> {
        std::mem::take(&mut self.completed)
    }

    /// Allocation-free variant of [`Links::drain_completed`]: clears `out`
    /// and swaps the completion buffer into it, recycling its capacity.
    // simlint: hot
    pub fn drain_completed_into(&mut self, out: &mut Vec<(TransferId, u64)>) {
        out.clear();
        std::mem::swap(&mut self.completed, out);
    }

    /// True if any transfer completed since the last drain.
    pub fn has_completed(&self) -> bool {
        !self.completed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_duration_matches_bandwidth() {
        let mut links = Links::new(600.0);
        let l = links.create(0.0, SimDuration::from_micros(5.0));
        links.submit(SimTime::ZERO, l, 600.0e9, 1); // exactly 1 second
        let t = links.next_completion().unwrap();
        assert!((t.as_secs() - 1.000005).abs() < 1e-9);
        links.advance_to(t);
        assert_eq!(links.drain_completed(), vec![(TransferId(0), 1)]);
    }

    #[test]
    fn fifo_serialization() {
        let mut links = Links::new(100.0);
        let l = links.create(100.0, SimDuration::ZERO);
        links.submit(SimTime::ZERO, l, 100.0e9, 1); // 1s
        links.submit(SimTime::ZERO, l, 100.0e9, 2); // finishes at 2s
        links.advance_to(SimTime::from_secs(1.5));
        assert_eq!(links.drain_completed().len(), 1);
        links.advance_to(SimTime::from_secs(2.5));
        assert_eq!(links.drain_completed(), vec![(TransferId(1), 2)]);
    }

    #[test]
    fn idle_link_has_no_completion() {
        let links = Links::new(100.0);
        assert!(links.next_completion().is_none());
    }

    #[test]
    fn degraded_link_slows_new_transfers_only() {
        let mut links = Links::new(100.0);
        let l = links.create(100.0, SimDuration::ZERO);
        links.submit(SimTime::ZERO, l, 100.0e9, 1); // 1s at nominal
        links.set_bw_factor(l, 0.5);
        links.submit(SimTime::ZERO, l, 100.0e9, 2); // 2s at half speed
        links.advance_to(SimTime::from_secs(1.0));
        assert_eq!(links.drain_completed(), vec![(TransferId(0), 1)]);
        let t = links.next_completion().unwrap();
        assert!((t.as_secs() - 3.0).abs() < 1e-9, "got {t}");
        links.clear_bw_factors();
        let l2 = links.create(100.0, SimDuration::ZERO);
        links.submit(SimTime::ZERO, l2, 100.0e9, 3);
        links.advance_to(SimTime::from_secs(1.0));
        assert_eq!(links.drain_completed(), vec![(TransferId(2), 3)]);
    }

    #[test]
    fn zero_byte_transfer_costs_latency_only() {
        let mut links = Links::new(100.0);
        let l = links.create(100.0, SimDuration::from_micros(5.0));
        links.submit(SimTime::from_secs(1.0), l, 0.0, 9);
        let t = links.next_completion().unwrap();
        assert!((t.as_secs() - 1.000005).abs() < 1e-9);
    }
}
