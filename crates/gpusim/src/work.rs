//! Work items: what schedulers submit to the GPU.
//!
//! A [`WorkItem`] is the resource footprint of one kernel batch — e.g. "one
//! transformer layer of prefill for this batch" or "one full decode
//! iteration". The `modelspec` crate produces these from model architecture
//! and sequence lengths; `gpusim` turns them into time.

/// The phase a kernel belongs to; used for accounting and for the
/// deterministic interference residual (different phase pairs contend
/// differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelKind {
    /// Prompt processing (compute-bound).
    Prefill,
    /// Token generation (memory-bound).
    Decode,
    /// A fused chunked-prefill iteration (prefill chunk + decode batch).
    Fused,
    /// Anything else (warm-up, profiling probes).
    Other,
}

/// The resource footprint of one kernel, **per GPU** of the executing
/// group.
///
/// # Examples
///
/// ```
/// use gpusim::{WorkItem, KernelKind};
/// let w = WorkItem::new(KernelKind::Decode, 1.0e11, 2.0e10, 50e-6);
/// assert_eq!(w.flops, 1.0e11);
/// let sum = w.plus(&w);
/// assert_eq!(sum.bytes, 4.0e10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkItem {
    /// Phase tag.
    pub kind: KernelKind,
    /// Floating-point operations per GPU.
    pub flops: f64,
    /// HBM bytes moved per GPU (weights + KV cache + activations).
    pub bytes: f64,
    /// Fixed time in seconds not overlapped with compute/memory
    /// (all-reduce latencies, kernel tails).
    pub fixed_secs: f64,
}

impl WorkItem {
    /// Creates a work item.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or not finite.
    pub fn new(kind: KernelKind, flops: f64, bytes: f64, fixed_secs: f64) -> WorkItem {
        assert!(flops.is_finite() && flops >= 0.0, "invalid flops: {flops}");
        assert!(bytes.is_finite() && bytes >= 0.0, "invalid bytes: {bytes}");
        assert!(
            fixed_secs.is_finite() && fixed_secs >= 0.0,
            "invalid fixed time: {fixed_secs}"
        );
        WorkItem {
            kind,
            flops,
            bytes,
            fixed_secs,
        }
    }

    /// An empty work item of the given kind (zero cost).
    pub fn empty(kind: KernelKind) -> WorkItem {
        WorkItem::new(kind, 0.0, 0.0, 0.0)
    }

    /// Component-wise sum, keeping `self`'s kind. Used to aggregate
    /// multiple layers into one launch.
    pub fn plus(&self, other: &WorkItem) -> WorkItem {
        WorkItem {
            kind: self.kind,
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            fixed_secs: self.fixed_secs + other.fixed_secs,
        }
    }

    /// Component-wise scaling (e.g. `layer_cost.scaled(n_layers as f64)`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative.
    pub fn scaled(&self, factor: f64) -> WorkItem {
        debug_assert!(factor >= 0.0);
        WorkItem {
            kind: self.kind,
            flops: self.flops * factor,
            bytes: self.bytes * factor,
            fixed_secs: self.fixed_secs * factor,
        }
    }

    /// True if the item performs no work at all.
    pub fn is_empty(&self) -> bool {
        self.flops == 0.0 && self.bytes == 0.0 && self.fixed_secs == 0.0
    }

    /// Arithmetic intensity in FLOPs per byte (∞-safe: returns
    /// `f64::INFINITY` for pure-compute items, 0 for empty ones).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            if self.flops == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.flops / self.bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_and_scaled() {
        let a = WorkItem::new(KernelKind::Prefill, 1.0, 2.0, 3.0);
        let b = WorkItem::new(KernelKind::Decode, 10.0, 20.0, 30.0);
        let s = a.plus(&b);
        assert_eq!(s.kind, KernelKind::Prefill);
        assert_eq!((s.flops, s.bytes, s.fixed_secs), (11.0, 22.0, 33.0));
        let d = b.scaled(0.5);
        assert_eq!((d.flops, d.bytes, d.fixed_secs), (5.0, 10.0, 15.0));
    }

    #[test]
    fn empty_detection() {
        assert!(WorkItem::empty(KernelKind::Other).is_empty());
        assert!(!WorkItem::new(KernelKind::Other, 0.0, 0.0, 1e-9).is_empty());
    }

    #[test]
    fn intensity_edges() {
        assert_eq!(WorkItem::empty(KernelKind::Other).intensity(), 0.0);
        assert_eq!(
            WorkItem::new(KernelKind::Other, 5.0, 0.0, 0.0).intensity(),
            f64::INFINITY
        );
        assert_eq!(
            WorkItem::new(KernelKind::Other, 6.0, 2.0, 0.0).intensity(),
            3.0
        );
    }

    #[test]
    #[should_panic(expected = "invalid flops")]
    fn rejects_nan() {
        WorkItem::new(KernelKind::Other, f64::NAN, 0.0, 0.0);
    }
}
