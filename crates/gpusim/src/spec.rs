//! Hardware specifications for the GPUs the paper evaluates on.
//!
//! Constants come from public NVIDIA datasheets; launch costs come from the
//! paper (§3.2.2: decode CUDA-graph launch ≈ 0.5 ms, piecewise prefill
//! graph launch ≈ 10 ms for Llama-70B on 8 A100s) and the contention caps
//! from §3.3.2 (max observed slowdown ≈ 20 % on A100, ≈ 30 % on H100).

use simcore::SimDuration;

/// Specification of one GPU model.
///
/// # Examples
///
/// ```
/// use gpusim::GpuSpec;
/// let a100 = GpuSpec::a100();
/// assert_eq!(a100.sm_count, 108);
/// assert_eq!(a100.partition_configs().len(), 6); // §3.3.2 of the paper
/// let h100 = GpuSpec::h100();
/// assert_eq!(h100.partition_configs().len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name ("A100-80GB", ...).
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Dense FP16/BF16 tensor-core throughput in TFLOP/s.
    pub fp16_tflops: f64,
    /// HBM capacity in GiB.
    pub hbm_capacity_gib: f64,
    /// Peak HBM bandwidth in GB/s.
    pub hbm_bw_gbs: f64,
    /// Cost of launching one captured CUDA graph (decode iteration).
    pub graph_launch: SimDuration,
    /// CPU-side cost of launching one un-captured kernel.
    pub kernel_launch: SimDuration,
    /// Cost of launching one layer of prefill as a piecewise CUDA graph.
    pub layer_graph_launch: SimDuration,
    /// Green-context SM partition granularity (16 on current parts, §3.3.2).
    pub partition_granularity: u32,
    /// Green-context reconfiguration cost (a stream synchronization).
    pub reconfig_cost: SimDuration,
    /// Ground-truth cap on the contention-induced slowdown residual
    /// (beyond bandwidth water-filling); 0.20 for A100, 0.30 for
    /// H100-class parts per §3.3.2.
    pub contention_residual_max: f64,
    /// Fraction of the SM count at which achievable HBM bandwidth is half
    /// of peak (bandwidth saturates with few SMs; see [`GpuSpec::mem_rate`]).
    pub bw_half_saturation: f64,
    /// Achievable fraction of peak tensor-core FLOPs on real transformer
    /// kernels (model FLOPs utilization; ~0.55 on A100-class parts).
    pub compute_efficiency: f64,
    /// Achievable FLOPs fraction for decode-phase kernels. Decode's
    /// GEMV-shaped matmuls stream operands and execute near peak once
    /// data arrives — their bottleneck is memory, which the roofline's
    /// `max()` captures; derating their compute too would double-count.
    pub decode_compute_efficiency: f64,
    /// Achievable fraction of peak HBM bandwidth on streaming kernels.
    pub mem_efficiency: f64,
    /// GPU memory consumed by one captured decode CUDA graph, in MiB
    /// (used for the §4.5 memory-overhead experiment).
    pub graph_memory_mib: f64,
    /// GPU memory consumed by creating a group of green contexts, in MiB.
    pub green_ctx_memory_mib: f64,
}

impl GpuSpec {
    /// NVIDIA A100-SXM4-80GB.
    pub fn a100() -> GpuSpec {
        GpuSpec {
            name: "A100-80GB",
            sm_count: 108,
            fp16_tflops: 312.0,
            hbm_capacity_gib: 80.0,
            hbm_bw_gbs: 2039.0,
            graph_launch: SimDuration::from_micros(500.0),
            kernel_launch: SimDuration::from_micros(8.0),
            layer_graph_launch: SimDuration::from_micros(125.0),
            partition_granularity: 16,
            reconfig_cost: SimDuration::from_micros(10.0),
            contention_residual_max: 0.20,
            bw_half_saturation: 0.25,
            compute_efficiency: 0.55,
            decode_compute_efficiency: 0.90,
            mem_efficiency: 0.80,
            graph_memory_mib: 40.0,
            green_ctx_memory_mib: 4.0,
        }
    }

    /// NVIDIA H100-SXM5-80GB.
    pub fn h100() -> GpuSpec {
        GpuSpec {
            name: "H100-80GB",
            sm_count: 132,
            fp16_tflops: 989.0,
            hbm_capacity_gib: 80.0,
            hbm_bw_gbs: 3350.0,
            graph_launch: SimDuration::from_micros(500.0),
            kernel_launch: SimDuration::from_micros(8.0),
            layer_graph_launch: SimDuration::from_micros(125.0),
            partition_granularity: 16,
            reconfig_cost: SimDuration::from_micros(10.0),
            contention_residual_max: 0.30,
            bw_half_saturation: 0.25,
            compute_efficiency: 0.55,
            decode_compute_efficiency: 0.90,
            mem_efficiency: 0.80,
            graph_memory_mib: 40.0,
            green_ctx_memory_mib: 4.0,
        }
    }

    /// NVIDIA H200-SXM5-141GB.
    pub fn h200() -> GpuSpec {
        GpuSpec {
            name: "H200-141GB",
            hbm_capacity_gib: 141.0,
            hbm_bw_gbs: 4800.0,
            ..GpuSpec::h100()
        }
    }

    /// The decode-partition configurations exposed by green contexts:
    /// multiples of [`GpuSpec::partition_granularity`] that leave at least
    /// half a granule for the other phase. Yields the paper's 6 configs on
    /// A100 and 7 on H100/H200 (§3.3.2).
    pub fn partition_configs(&self) -> Vec<u32> {
        let g = self.partition_granularity;
        (1..)
            .map(|k| k * g)
            .take_while(|&sms| self.sm_count.saturating_sub(sms) >= g / 2)
            .collect()
    }

    /// Compute throughput in FLOP/s available to a context owning `sms`
    /// SMs (linear in the SM share).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `sms` exceeds the SM count.
    pub fn compute_rate(&self, sms: u32) -> f64 {
        debug_assert!(sms <= self.sm_count);
        self.fp16_tflops * 1e12 * self.compute_efficiency * sms as f64 / self.sm_count as f64
    }

    /// Compute throughput for a kernel of the given kind (decode kernels
    /// reach a higher FLOPs fraction; see
    /// [`GpuSpec::decode_compute_efficiency`]).
    pub fn compute_rate_for(&self, kind: crate::KernelKind, sms: u32) -> f64 {
        let base = self.compute_rate(sms) / self.compute_efficiency;
        match kind {
            crate::KernelKind::Decode => base * self.decode_compute_efficiency,
            _ => base * self.compute_efficiency,
        }
    }

    /// Achievable HBM bandwidth (GB/s) for a context owning `sms` SMs.
    ///
    /// Memory bandwidth saturates with far fewer SMs than compute: the
    /// model is `peak * (1+k) * x / (x + k)` with `x = sms/total` and
    /// `k =` [`GpuSpec::bw_half_saturation`]. A 16-SM partition on an A100
    /// (x ≈ 0.148) reaches ≈ 62 % of peak — which is why a small decode
    /// partition can still meet TBT SLOs (§2.4).
    pub fn mem_rate(&self, sms: u32) -> f64 {
        let x = sms as f64 / self.sm_count as f64;
        let k = self.bw_half_saturation;
        self.hbm_bw_gbs * 1e9 * self.mem_efficiency * ((1.0 + k) * x / (x + k)).min(1.0)
    }

    /// Memory (MiB) consumed by CUDA-graph captures for `num_partitions`
    /// partition configurations × `batch_sizes_captured` decode batch
    /// sizes, plus green-context creation. Drives the §4.5 overhead
    /// experiment.
    pub fn graph_memory_overhead_mib(
        &self,
        num_partitions: usize,
        batch_sizes_captured: usize,
    ) -> f64 {
        self.green_ctx_memory_mib
            + self.graph_memory_mib * num_partitions as f64 * batch_sizes_captured as f64
    }
}

/// A server: `num_gpus` identical GPUs joined by NVLink.
///
/// # Examples
///
/// ```
/// use gpusim::ClusterSpec;
/// let server = ClusterSpec::dgx_a100();
/// assert_eq!(server.num_gpus, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// The GPU model installed.
    pub gpu: GpuSpec,
    /// Number of GPUs in the server.
    pub num_gpus: u32,
    /// Per-GPU NVLink bandwidth in GB/s.
    pub nvlink_gbs: f64,
    /// NVLink per-message latency.
    pub nvlink_latency: SimDuration,
}

impl ClusterSpec {
    /// The paper's primary testbed: 8×A100-80GB, 600 GB/s NVLink.
    pub fn dgx_a100() -> ClusterSpec {
        ClusterSpec {
            gpu: GpuSpec::a100(),
            num_gpus: 8,
            nvlink_gbs: 600.0,
            nvlink_latency: SimDuration::from_micros(5.0),
        }
    }

    /// 8×H100-SXM5-80GB, 900 GB/s NVLink.
    pub fn dgx_h100() -> ClusterSpec {
        ClusterSpec {
            gpu: GpuSpec::h100(),
            num_gpus: 8,
            nvlink_gbs: 900.0,
            nvlink_latency: SimDuration::from_micros(5.0),
        }
    }

    /// 8×H200-SXM5-141GB, 900 GB/s NVLink.
    pub fn dgx_h200() -> ClusterSpec {
        ClusterSpec {
            gpu: GpuSpec::h200(),
            num_gpus: 8,
            nvlink_gbs: 900.0,
            nvlink_latency: SimDuration::from_micros(5.0),
        }
    }

    /// A single-GPU A100 box (used for §4.3.1).
    pub fn single_a100() -> ClusterSpec {
        ClusterSpec {
            num_gpus: 1,
            ..ClusterSpec::dgx_a100()
        }
    }

    /// Total HBM across the server, in bytes.
    pub fn total_hbm_bytes(&self) -> u64 {
        (self.gpu.hbm_capacity_gib * self.num_gpus as f64 * 1024.0 * 1024.0 * 1024.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_config_counts_match_paper() {
        assert_eq!(
            GpuSpec::a100().partition_configs(),
            vec![16, 32, 48, 64, 80, 96]
        );
        assert_eq!(
            GpuSpec::h100().partition_configs(),
            vec![16, 32, 48, 64, 80, 96, 112]
        );
        assert_eq!(GpuSpec::h200().partition_configs().len(), 7);
    }

    #[test]
    fn compute_rate_is_linear() {
        let g = GpuSpec::a100();
        let half = g.compute_rate(54);
        let full = g.compute_rate(108);
        assert!((full / half - 2.0).abs() < 1e-9);
        assert!((full - 312.0e12 * g.compute_efficiency).abs() < 1e3);
    }

    #[test]
    fn mem_rate_saturates_early() {
        let g = GpuSpec::a100();
        let frac_16 = g.mem_rate(16) / g.mem_rate(108);
        assert!(
            frac_16 > 0.35 && frac_16 < 0.65,
            "16 SMs should reach 35-65% of peak bandwidth, got {frac_16}"
        );
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for sms in (0..=108).step_by(4) {
            let r = g.mem_rate(sms);
            assert!(r >= prev);
            prev = r;
        }
        assert!(g.mem_rate(108) <= g.hbm_bw_gbs * 1e9 + 1.0);
    }

    #[test]
    fn decode_is_memory_bound_prefill_compute_bound() {
        // Sanity check of the asymmetry the paper builds on, with rough
        // Llama-70B TP-8 numbers: decode reads ~17.5 GB of weights per GPU
        // with tiny FLOPs; prefill of 2K tokens does ~35 TFLOPs per GPU.
        let g = GpuSpec::a100();
        // Machine balance at 32 SMs: FLOPs/byte above which a kernel is
        // compute-bound.
        let balance = g.compute_rate(32) / g.mem_rate(32);
        // Llama-70B TP-8 decode at bs=32: ~0.55 TFLOP over ~18.5 GB.
        let decode_intensity = 0.55e12 / 18.5e9;
        assert!(decode_intensity < balance, "decode must be memory-bound");
        // Prefill of 2K tokens: ~35 TFLOP over ~19 GB.
        let prefill_intensity = 35.0e12 / 19.0e9;
        assert!(prefill_intensity > balance, "prefill must be compute-bound");
    }

    #[test]
    fn graph_memory_matches_headline_overhead() {
        // §4.5: ~6.2% of an 80 GB GPU for 6 partitions × ~20 batch sizes.
        let g = GpuSpec::a100();
        let mib = g.graph_memory_overhead_mib(6, 20);
        let frac = mib / (g.hbm_capacity_gib * 1024.0);
        assert!(
            (0.04..0.08).contains(&frac),
            "graph memory fraction {frac} not ≈ 6%"
        );
    }

    #[test]
    fn cluster_totals() {
        let c = ClusterSpec::dgx_a100();
        assert_eq!(c.total_hbm_bytes(), 8 * 80 * 1024 * 1024 * 1024);
        assert_eq!(ClusterSpec::single_a100().num_gpus, 1);
    }
}
