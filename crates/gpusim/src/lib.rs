#![warn(missing_docs)]
//! Discrete-event GPU simulator for the MuxWise reproduction.
//!
//! The paper's testbeds (8×A100-80GB, 8×H100, 8×H200 servers with NVLink)
//! are replaced by this simulator. It models exactly the mechanisms the
//! paper's claims depend on:
//!
//! * **SM partitioning via green contexts** ([`engine::GpuSim::set_context`])
//!   at a 16-SM granularity with microsecond reconfiguration cost, matching
//!   CUDA Green Contexts as used by MuxWise.
//! * **Kernels as (FLOPs, bytes, fixed-time) work items** executing on a
//!   context. A kernel's solo duration is the roofline
//!   `max(flops / compute_rate(sms), bytes / bandwidth(sms)) + fixed`,
//!   where achievable memory bandwidth saturates well below the full SM
//!   count (a handful of SMs can nearly saturate HBM — this is why decode
//!   needs few SMs and prefill many, the asymmetry the whole paper builds
//!   on).
//! * **Bandwidth contention between co-running contexts** via weighted
//!   water-filling of per-GPU HBM bandwidth, plus a deterministic
//!   configuration-dependent interference residual bounded by ~20 % on
//!   A100-class and ~30 % on H100-class parts — reproducing the observed
//!   range and irregularity of Fig. 11. Schedulers and estimators never
//!   read this ground truth; they must profile, exactly as in the paper.
//! * **Launch costs**: a 0.5 ms CUDA-graph launch for decode iterations,
//!   ~10 ms piecewise-graph launch for a full Llama-70B prefill (split
//!   across layers when layer-wise execution is used), and per-kernel
//!   launch overheads — the source of the GPU bubbles in Fig. 9.
//! * **NVLink links** for tensor-parallel all-reduce (folded into kernel
//!   fixed time by `modelspec`) and explicit KV-cache migration transfers
//!   (used by the disaggregated baselines).
//!
//! Streams are modeled by the per-context FIFO kernel queue: only the head
//! kernel of a context runs; later submissions wait, as CUDA streams do.
//!
//! # Examples
//!
//! ```
//! use gpusim::{GpuSim, GpuSpec, WorkItem, KernelKind};
//! use simcore::SimTime;
//!
//! let mut sim = GpuSim::new(GpuSpec::a100(), 8, 600.0);
//! let group = sim.create_group((0..8).collect());
//! let ctx = sim.set_context(group, 108);
//! let work = WorkItem::new(KernelKind::Prefill, 1.0e12, 1.0e9, 0.0);
//! sim.submit(group, ctx, work, SimTime::ZERO, 1);
//! let mut completed = Vec::new();
//! while let Some(t) = sim.next_event_time() {
//!     sim.advance_to(t);
//!     completed.extend(sim.drain_completed());
//! }
//! assert_eq!(completed.len(), 1);
//! ```

pub mod engine;
pub mod link;
pub mod spec;
pub mod work;

pub use engine::{CtxId, GpuSim, GroupId, HwDegradation, KernelId};
pub use link::{LinkId, TransferId};
pub use spec::{ClusterSpec, GpuSpec};
pub use work::{KernelKind, WorkItem};
