//! Property-based tests for the GPU simulator: conservation, ordering
//! and bounded contention under arbitrary kernel mixes.

use gpusim::{GpuSim, GpuSpec, KernelKind, WorkItem};
use proptest::prelude::*;
use simcore::SimTime;

fn kernel_strategy() -> impl Strategy<Value = (u8, f64, f64, u64)> {
    // (ctx index selector, flops, bytes, ready_at ns)
    (0u8..3, 1e9f64..5e13, 0f64..5e10, 0u64..50_000_000)
}

fn drain(sim: &mut GpuSim) -> Vec<(SimTime, u64)> {
    let mut out = Vec::new();
    while let Some(t) = sim.next_event_time() {
        sim.advance_to(t);
        for (_, tag) in sim.drain_completed() {
            out.push((sim.now(), tag));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted kernel completes exactly once, and completions on
    /// one context respect submission (FIFO) order.
    #[test]
    fn kernels_conserve_and_order(kernels in prop::collection::vec(kernel_strategy(), 1..40)) {
        let mut sim = GpuSim::new(GpuSpec::a100(), 8, 600.0);
        let g = sim.create_group((0..8).collect());
        let ctxs = [
            sim.set_context(g, 16),
            sim.set_context(g, 32),
            sim.set_context(g, 48),
        ];
        let mut per_ctx: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (i, &(c, flops, bytes, ready)) in kernels.iter().enumerate() {
            let kind = if c == 0 { KernelKind::Decode } else { KernelKind::Prefill };
            let work = WorkItem::new(kind, flops, bytes, 0.0);
            sim.submit(g, ctxs[c as usize], work, SimTime::from_nanos(ready), i as u64);
            per_ctx[c as usize].push(i as u64);
        }
        let done = drain(&mut sim);
        prop_assert_eq!(done.len(), kernels.len(), "kernel lost or duplicated");
        // FIFO per context.
        for (c, expected) in per_ctx.iter().enumerate() {
            let seen: Vec<u64> = done
                .iter()
                .map(|&(_, tag)| tag)
                .filter(|t| kernels[*t as usize].0 as usize == c)
                .collect();
            prop_assert_eq!(&seen, expected, "context {} completion order", c);
        }
    }

    /// Co-running never makes a kernel *faster* than solo, and never
    /// slower than the theoretical contention bound.
    #[test]
    fn corun_slowdown_is_bounded(
        d_bytes in 1e9f64..4e10,
        p_flops in 1e12f64..8e13,
        p_bytes in 0f64..6e10,
    ) {
        let spec = GpuSpec::a100();
        let cap = spec.contention_residual_max;
        let mut sim = GpuSim::new(spec, 8, 600.0);
        let g = sim.create_group((0..8).collect());
        let d_ctx = sim.set_context(g, 16);
        let p_ctx = sim.set_context(g, 92);
        let decode = WorkItem::new(KernelKind::Decode, 1e11, d_bytes, 0.0);
        let solo = sim.solo_duration(16, &decode);
        // Make prefill long enough to cover the decode.
        let prefill = WorkItem::new(KernelKind::Prefill, p_flops, p_bytes, 0.0);
        let p_solo = sim.solo_duration(92, &prefill);
        let scale = (solo * 3.0 / p_solo).max(1.0);
        let start = SimTime::from_secs(0.001);
        sim.submit(g, p_ctx, prefill.scaled(scale.ceil()), start, 1);
        sim.submit(g, d_ctx, decode, start, 2);
        let done = drain(&mut sim);
        let decode_done = done.iter().find(|&&(_, tag)| tag == 2).expect("decode completes").0;
        let corun = (decode_done - start).as_secs();
        prop_assert!(corun >= solo * 0.999, "speedup impossible: {corun} vs {solo}");
        // Upper bound: bandwidth halving at worst (weighted fill) plus
        // the residual cap, with slack for discretization.
        prop_assert!(
            corun <= solo * (2.5 + cap),
            "slowdown {} implausible",
            corun / solo
        );
    }

    /// advance_to never moves time backwards and next_event_time is
    /// monotone as the simulation progresses.
    #[test]
    fn time_is_monotone(kernels in prop::collection::vec(kernel_strategy(), 1..25)) {
        let mut sim = GpuSim::new(GpuSpec::h100(), 8, 900.0);
        let g = sim.create_group((0..8).collect());
        let c = sim.set_context(g, 132);
        for (i, &(_, flops, bytes, ready)) in kernels.iter().enumerate() {
            let work = WorkItem::new(KernelKind::Other, flops, bytes, 0.0);
            sim.submit(g, c, work, SimTime::from_nanos(ready), i as u64);
        }
        let mut last = SimTime::ZERO;
        while let Some(t) = sim.next_event_time() {
            prop_assert!(t >= last);
            sim.advance_to(t);
            sim.drain_completed();
            last = t;
        }
    }

    /// Solo duration scales down monotonically with more SMs.
    #[test]
    fn solo_duration_monotone_in_sms(flops in 1e10f64..1e14, bytes in 0f64..1e11) {
        let sim = GpuSim::new(GpuSpec::a100(), 1, 600.0);
        let work = WorkItem::new(KernelKind::Prefill, flops, bytes, 0.0);
        let mut last = f64::INFINITY;
        for sms in [16, 32, 48, 64, 80, 96, 108] {
            let t = sim.solo_duration(sms, &work);
            prop_assert!(t <= last * 1.0000001, "more SMs made it slower");
            last = t;
        }
    }

    /// Link transfers complete in FIFO order with duration proportional
    /// to bytes.
    #[test]
    fn transfers_are_fifo(sizes in prop::collection::vec(1e6f64..1e10, 1..20)) {
        let mut sim = GpuSim::new(GpuSpec::a100(), 2, 600.0);
        let link = sim.create_link(600.0, simcore::SimDuration::from_micros(5.0));
        for (i, &b) in sizes.iter().enumerate() {
            sim.submit_transfer(link, b, i as u64);
        }
        let mut seen = Vec::new();
        while let Some(t) = sim.next_event_time() {
            sim.advance_to(t);
            seen.extend(sim.drain_completed_transfers().into_iter().map(|(_, tag)| tag));
        }
        let expected: Vec<u64> = (0..sizes.len() as u64).collect();
        prop_assert_eq!(seen, expected);
    }
}
