#!/usr/bin/env bash
# Repo gate: formatting, lints (warnings are errors), docs (warnings are
# errors), full test suite. Run before every commit: ./scripts/check.sh
#
# Fast path while iterating on the engine substrate:
#   ./scripts/check.sh serving     # just the serving crate's tests
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "serving" ]]; then
    cargo test -q -p serving
    exit 0
fi

cargo fmt --check
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet
cargo test -q
