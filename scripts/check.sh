#!/usr/bin/env bash
# Repo gate: formatting, lints (warnings are errors), docs (warnings are
# errors), full test suite. Run before every commit: ./scripts/check.sh
#
# Fast paths while iterating:
#   ./scripts/check.sh serving         # just the serving crate's tests
#   ./scripts/check.sh chaos-smoke     # fault-injection smoke grid only
#   ./scripts/check.sh recovery-smoke  # GPU fail-stop crash/recover grid only
#   ./scripts/check.sh lint            # simlint invariant pass only
#   ./scripts/check.sh lint --changed  # simlint, findings scoped to files changed vs HEAD
#   ./scripts/check.sh perf-smoke      # hot-path throughput gate (>20% regression fails)
#   ./scripts/check.sh fleet-smoke     # fleet router tier: leaks, accounting, thread identity
#   ./scripts/check.sh fleet-chaos-smoke  # fleet failover: a victim must migrate and finish elsewhere
#   ./scripts/check.sh gray-smoke      # gray failures: hedged dispatch, cancelled books, thread identity
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "serving" ]]; then
    cargo test -q -p serving
    exit 0
fi

if [[ "${1:-}" == "lint" ]]; then
    if [[ "${2:-}" == "--changed" ]]; then
        # Diff-scoped lint: the full workspace is still linted (the
        # interprocedural rules need every file for the call graph),
        # but only findings in files changed vs HEAD are reported.
        mapfile -t changed < <(git diff --name-only HEAD -- 'crates/*/src/**' | grep '\.rs$' || true)
        if [[ ${#changed[@]} -eq 0 ]]; then
            echo "check.sh: no changed .rs files under crates/*/src" >&2
            exit 0
        fi
        cargo run --release -q -p simlint -- --changed "${changed[@]}"
        exit 0
    fi
    cargo run --release -q -p simlint
    exit 0
fi

if [[ "${1:-}" == "perf-smoke" ]]; then
    cargo run --release -q -p bench --bin perf_smoke
    exit 0
fi

if [[ "${1:-}" == "fleet-smoke" ]]; then
    cargo run --release -q -p bench --bin fleet -- --smoke
    exit 0
fi

if [[ "${1:-}" == "fleet-chaos-smoke" ]]; then
    cargo run --release -q -p bench --bin fleet_chaos -- --smoke
    exit 0
fi

if [[ "${1:-}" == "gray-smoke" ]]; then
    cargo run --release -q -p bench --bin fleet_chaos -- --gray-smoke
    exit 0
fi

if [[ "${1:-}" == "chaos-smoke" ]]; then
    cargo run --release -q -p bench --bin chaos -- --smoke
    exit 0
fi

if [[ "${1:-}" == "recovery-smoke" ]]; then
    cargo run --release -q -p bench --bin chaos -- --recovery-smoke
    exit 0
fi

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo run --release -q -p simlint
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet
cargo test -q
cargo run --release -q -p bench --bin chaos -- --smoke
cargo run --release -q -p bench --bin chaos -- --recovery-smoke
cargo run --release -q -p bench --bin fleet -- --smoke
cargo run --release -q -p bench --bin fleet_chaos -- --smoke
cargo run --release -q -p bench --bin fleet_chaos -- --gray-smoke
