#!/usr/bin/env bash
# Repo gate: formatting, lints (warnings are errors), full test suite.
# Run before every commit: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo test -q
